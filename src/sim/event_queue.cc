#include "event_queue.hh"

#include <algorithm>

#include "logging.hh"

namespace ecssd
{
namespace sim
{

EventQueue::EventId
EventQueue::schedule(Tick when, EventAction action, std::string label)
{
    ECSSD_ASSERT(when >= now_,
                 "event '", label, "' scheduled in the past (when=",
                 when, " now=", now_, ")");
    ECSSD_ASSERT(action, "event '", label, "' has no action");
    const EventId id = nextId_++;
    heap_.push(Entry{when, nextSequence_++, id, std::move(action),
                     std::move(label)});
    pending_.insert(id);
    ++size_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Only events that are still pending can be cancelled; fired and
    // already-cancelled ids fail.
    if (pending_.erase(id) == 0)
        return false;
    // Lazy deletion: remember the id and skip the entry when popped.
    cancelled_.push_back(id);
    if (size_ > 0)
        --size_;
    return true;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id)
        != cancelled_.end();
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry entry = heap_.top();
        heap_.pop();
        if (isCancelled(entry.id)) {
            cancelled_.erase(std::find(cancelled_.begin(),
                                       cancelled_.end(), entry.id));
            continue;
        }
        ECSSD_ASSERT(entry.when >= now_, "event time went backwards");
        now_ = entry.when;
        pending_.erase(entry.id);
        --size_;
        ++fired_;
        entry.action();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (isCancelled(top.id)) {
            step();
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    // Advance idle time to the limit only when work remains beyond it;
    // a drained queue keeps the time of its last event.
    if (size_ > 0 && now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace sim
} // namespace ecssd
