/**
 * @file
 * Minimal JSON emission and flat-document parsing.
 *
 * The observability exports (metrics registry, span logs, bench
 * baselines) need deterministic, dependency-free JSON.  JsonWriter
 * emits objects/arrays with stable formatting (numbers via %.17g, so
 * round-trips are exact); parseFlatJson reads a JSON document of
 * nested objects back into a flat "a.b.c" -> number map, which is all
 * the baseline comparator and tests need.  Strings, booleans and
 * nulls are parsed but dropped from the flat view.
 */

#ifndef ECSSD_SIM_JSON_HH
#define ECSSD_SIM_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ecssd
{
namespace sim
{

/** Escape @p raw for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &raw);

/** Format a double the way JsonWriter does (deterministic %.17g). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with automatic comma/indent handling.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("latency"); w.beginObject();
 *   w.key("p50_ms"); w.value(1.25);
 *   w.endObject();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value or container. */
    void key(const std::string &name);

    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v);

  private:
    void separate();
    void indent();

    std::ostream &os_;
    /** true = first entry of the innermost container. */
    std::vector<bool> firstInScope_;
    bool afterKey_ = false;
};

/**
 * Parse a JSON document into a flat dotted-name -> number map.
 *
 * Nested object keys are joined with '.'; array elements get their
 * index as the key segment.  Non-numeric leaves are skipped.  Fatal
 * on malformed input.
 */
std::map<std::string, double> parseFlatJson(const std::string &text);

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_JSON_HH
