/**
 * @file
 * Deterministic host-compute thread pool.
 *
 * The simulator's functional tier (screener scoring, candidate
 * re-rank, quantization) is embarrassingly parallel over row ranges,
 * but naive parallelism breaks the repo's golden-run contract: every
 * run must be bit-identical regardless of machine or thread count.
 * parallelFor() therefore statically partitions the index range into
 * fixed-size chunks that are *independent of the worker count*; each
 * chunk writes only its own output slots, so any interleaving of
 * chunk execution produces the same bits, and the single-threaded
 * path executes the exact same chunks in index order.
 *
 * Determinism contract (docs/MODELING.md section 10):
 *  - the chunk boundaries depend only on (begin, end, grain);
 *  - a body must write only state indexed by its chunk range (no
 *    shared accumulators — reduce per chunk, merge in index order);
 *  - under that discipline, results are bit-identical for any thread
 *    count, including 1 (which never spawns a thread at all).
 */

#ifndef ECSSD_SIM_THREAD_POOL_HH
#define ECSSD_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecssd
{
namespace sim
{

/** A persistent pool of host worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads Total worker count including the calling thread;
     *        clamped to >= 1.  A pool of 1 spawns no threads and runs
     *        every parallelFor() body inline.
     */
    explicit ThreadPool(unsigned threads = 1);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Total worker count including the caller. */
    unsigned threads() const { return threads_; }

    /**
     * Run @p body over [begin, end) in chunks of at most @p grain
     * indices: body(chunk_begin, chunk_end) for every chunk.
     *
     * Chunk boundaries depend only on the range and grain — never on
     * the thread count — so a body that writes only its own chunk's
     * output slots produces bit-identical results at any pool size.
     * The calling thread participates; the call returns after every
     * chunk has finished.  Nested calls from inside a body run
     * inline (serially) rather than deadlocking the pool.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>
                         &body);

  private:
    void workerLoop();

    /** Run chunks of the current job until none remain. */
    void drainChunks(const std::function<void(std::size_t, std::size_t)>
                         &body);

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stopping_ = false;

    // Current job (valid while jobActive_): chunk geometry plus the
    // next-chunk cursor workers claim from.
    const std::function<void(std::size_t, std::size_t)> *body_ =
        nullptr;
    std::size_t jobBegin_ = 0;
    std::size_t jobEnd_ = 0;
    std::size_t jobGrain_ = 1;
    std::size_t chunkCount_ = 0;
    std::atomic<std::size_t> nextChunk_{0};
    std::size_t chunksDone_ = 0;
    std::uint64_t jobId_ = 0;
    bool jobActive_ = false;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_THREAD_POOL_HH
