#include "thread_pool.hh"

namespace ecssd
{
namespace sim
{

namespace
{

/** Set while this thread is executing a parallelFor body, so nested
 *  calls run inline instead of deadlocking the pool. */
thread_local bool inParallelBody = false;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? 1 : threads)
{
    for (unsigned t = 1; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::drainChunks(
    const std::function<void(std::size_t, std::size_t)> &body)
{
    // Claim chunks until none remain.  Chunk geometry is fixed at
    // job start, so the claimed index alone determines the range.
    std::size_t executed = 0;
    inParallelBody = true;
    for (;;) {
        const std::size_t chunk =
            nextChunk_.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunkCount_)
            break;
        const std::size_t chunk_begin =
            jobBegin_ + chunk * jobGrain_;
        const std::size_t chunk_end =
            std::min(jobEnd_, chunk_begin + jobGrain_);
        body(chunk_begin, chunk_end);
        ++executed;
    }
    inParallelBody = false;

    std::lock_guard<std::mutex> lock(mutex_);
    chunksDone_ += executed;
    if (chunksDone_ == chunkCount_)
        done_.notify_all();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_job = 0;
    for (;;) {
        const std::function<void(std::size_t, std::size_t)> *body =
            nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_
                    || (jobActive_ && jobId_ != seen_job);
            });
            if (stopping_)
                return;
            seen_job = jobId_;
            body = body_;
        }
        drainChunks(*body);
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t count = end - begin;
    const std::size_t chunks = (count + grain - 1) / grain;

    // The serial pool, a single chunk, and nested calls all run
    // inline — over the exact same chunk boundaries the parallel
    // path would use, so the two paths are interchangeable bit for
    // bit under the chunk-independence contract.
    if (threads_ == 1 || chunks == 1 || inParallelBody) {
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
            const std::size_t chunk_begin = begin + chunk * grain;
            body(chunk_begin, std::min(end, chunk_begin + grain));
        }
        return;
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        // One job at a time: a concurrent caller parks here until
        // the active job's owner retires it.
        done_.wait(lock, [&] { return !jobActive_; });
        body_ = &body;
        jobBegin_ = begin;
        jobEnd_ = end;
        jobGrain_ = grain;
        chunkCount_ = chunks;
        chunksDone_ = 0;
        nextChunk_.store(0, std::memory_order_relaxed);
        ++jobId_;
        jobActive_ = true;
    }
    wake_.notify_all();

    // The caller is a full participant.
    drainChunks(body);

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return chunksDone_ == chunkCount_; });
    // Only the owning caller retires the job, so the job fields stay
    // stable until this wait has been satisfied.
    jobActive_ = false;
    body_ = nullptr;
    done_.notify_all();
}

} // namespace sim
} // namespace ecssd
