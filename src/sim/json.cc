#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace ecssd
{
namespace sim
{

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    ECSSD_ASSERT(std::isfinite(v), "non-finite value in JSON output");
    // %.17g round-trips every double exactly and is deterministic
    // across platforms with IEEE-correct printf.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!firstInScope_.empty()) {
        if (!firstInScope_.back())
            os_ << ",";
        firstInScope_.back() = false;
        os_ << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < firstInScope_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    firstInScope_.push_back(true);
}

void
JsonWriter::endObject()
{
    ECSSD_ASSERT(!firstInScope_.empty(), "endObject with no scope");
    const bool empty = firstInScope_.back();
    firstInScope_.pop_back();
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "}";
    if (firstInScope_.empty())
        os_ << "\n";
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    firstInScope_.push_back(true);
}

void
JsonWriter::endArray()
{
    ECSSD_ASSERT(!firstInScope_.empty(), "endArray with no scope");
    const bool empty = firstInScope_.back();
    firstInScope_.pop_back();
    if (!empty) {
        os_ << "\n";
        indent();
    }
    os_ << "]";
    if (firstInScope_.empty())
        os_ << "\n";
}

void
JsonWriter::key(const std::string &name)
{
    separate();
    os_ << "\"" << jsonEscape(name) << "\": ";
    afterKey_ = true;
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << "\"" << jsonEscape(v) << "\"";
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

namespace
{

/** Recursive-descent cursor over the JSON text. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::map<std::string, double> out;

    [[noreturn]] void
    fail(const char *what)
    {
        fatal("malformed JSON at offset ", pos, ": ", what);
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    fail("dangling escape");
                const char esc = text[pos++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  case 'r':
                    c = '\r';
                    break;
                  case 'u':
                    // Flat numeric view: keep the raw digits.
                    if (pos + 4 > text.size())
                        fail("short \\u escape");
                    s += "\\u" + text.substr(pos, 4);
                    pos += 4;
                    continue;
                  default:
                    c = esc;
                }
            }
            s += c;
        }
        if (pos >= text.size())
            fail("unterminated string");
        ++pos; // closing quote
        return s;
    }

    void
    parseValue(const std::string &prefix)
    {
        const char c = peek();
        if (c == '{') {
            ++pos;
            if (peek() == '}') {
                ++pos;
                return;
            }
            while (true) {
                const std::string name = parseString();
                expect(':');
                parseValue(prefix.empty() ? name
                                          : prefix + "." + name);
                const char sep = peek();
                if (sep == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                break;
            }
        } else if (c == '[') {
            ++pos;
            if (peek() == ']') {
                ++pos;
                return;
            }
            for (std::uint64_t index = 0;; ++index) {
                parseValue(prefix + "." + std::to_string(index));
                const char sep = peek();
                if (sep == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                break;
            }
        } else if (c == '"') {
            parseString(); // non-numeric leaf: dropped
        } else if (c == 't') {
            literal("true");
        } else if (c == 'f') {
            literal("false");
        } else if (c == 'n') {
            literal("null");
        } else {
            char *end = nullptr;
            const double v =
                std::strtod(text.c_str() + pos, &end);
            if (end == text.c_str() + pos)
                fail("expected a value");
            pos = static_cast<std::size_t>(end - text.c_str());
            out[prefix.empty() ? "value" : prefix] = v;
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p)
                fail("bad literal");
            ++pos;
        }
    }
};

} // namespace

std::map<std::string, double>
parseFlatJson(const std::string &text)
{
    Parser parser{text};
    parser.parseValue("");
    parser.skipWs();
    if (parser.pos != text.size())
        parser.fail("trailing characters");
    return std::move(parser.out);
}

} // namespace sim
} // namespace ecssd
