#include "logging.hh"

namespace ecssd
{
namespace sim
{

namespace
{
bool verboseFlag = false;
} // namespace

bool
logVerbose()
{
    return verboseFlag;
}

void
setLogVerbose(bool enabled)
{
    verboseFlag = enabled;
}

} // namespace sim
} // namespace ecssd
