#include "rng.hh"

#include <cmath>
#include <numbers>

#include "logging.hh"

namespace ecssd
{
namespace sim
{

namespace
{

/** splitmix64 used only for seeding the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    ECSSD_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ECSSD_ASSERT(lo <= hi, "uniformInt range is empty");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller transform; u1 shifted away from zero for log().
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedGaussian_ = radius * std::sin(theta);
    hasCachedGaussian_ = true;
    return radius * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    ECSSD_ASSERT(n > 0, "zipf needs a positive support size");
    if (n == 1)
        return 0;

    if (s <= 0.0)
        return uniformInt(n);

    // Devroye's rejection method over the continuous envelope; O(1)
    // per sample regardless of n.
    if (zipfN_ != n || zipfS_ != s) {
        zipfN_ = n;
        zipfS_ = s;
        const double nd = static_cast<double>(n);
        zipfHn_ = (s == 1.0)
            ? std::log(nd + 1.0)
            : (std::pow(nd + 1.0, 1.0 - s) - 1.0) / (1.0 - s);
    }

    for (;;) {
        const double u = uniform() * zipfHn_;
        const double x = (zipfS_ == 1.0)
            ? std::exp(u) - 1.0
            : std::pow(u * (1.0 - zipfS_) + 1.0, 1.0 / (1.0 - zipfS_))
                  - 1.0;
        const std::uint64_t k =
            static_cast<std::uint64_t>(std::floor(x));
        if (k >= n)
            continue;
        // Accept with prob (k+1)^-s / envelope density at x.
        const double ratio =
            std::pow(static_cast<double>(k + 1), -zipfS_)
            / std::pow(x + 1.0, -zipfS_);
        if (uniform() <= ratio)
            return k;
    }
}

std::vector<std::uint32_t>
Rng::permutation(std::uint32_t n)
{
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i)
        perm[i] = i;
    shuffle(perm);
    return perm;
}

} // namespace sim
} // namespace ecssd
