#include "traffic.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ecssd
{
namespace sim
{

const char *
toString(ArrivalProcess process)
{
    switch (process) {
    case ArrivalProcess::Poisson:
        return "poisson";
    case ArrivalProcess::Diurnal:
        return "diurnal";
    case ArrivalProcess::BurstySpike:
        return "bursty";
    }
    return "unknown";
}

const char *
toString(RequestClass cls)
{
    switch (cls) {
    case RequestClass::Gold:
        return "gold";
    case RequestClass::BestEffort:
        return "best-effort";
    }
    return "unknown";
}

void
TrafficConfig::validate() const
{
    if (ratePerSecond <= 0.0)
        fatal("TrafficConfig: ratePerSecond must be positive, got ",
              ratePerSecond);
    if (users == 0)
        fatal("TrafficConfig: at least one user is required");
    if (goldFraction < 0.0 || goldFraction > 1.0)
        fatal("TrafficConfig: goldFraction must be in [0, 1], got ",
              goldFraction);
    if (userZipfExponent < 0.0)
        fatal("TrafficConfig: userZipfExponent must be >= 0, got ",
              userZipfExponent);
    if (process == ArrivalProcess::Diurnal) {
        if (diurnalAmplitude < 0.0 || diurnalAmplitude >= 1.0)
            fatal("TrafficConfig: diurnalAmplitude must be in "
                  "[0, 1), got ",
                  diurnalAmplitude);
        if (diurnalPeriodSeconds <= 0.0)
            fatal("TrafficConfig: diurnalPeriodSeconds must be "
                  "positive, got ",
                  diurnalPeriodSeconds);
    }
    if (process == ArrivalProcess::BurstySpike) {
        if (burstRateMultiplier < 1.0)
            fatal("TrafficConfig: burstRateMultiplier must be >= 1, "
                  "got ",
                  burstRateMultiplier);
        if (meanBurstSeconds <= 0.0 || meanCalmSeconds <= 0.0)
            fatal("TrafficConfig: MMPP dwell means must be positive");
    }
}

namespace
{

/** splitmix64 finalizer: the per-user class assignment must be a
 *  pure function of (seed, user), stable across engines. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Exponential draw with the given rate (events per second). */
double
exponential(Rng &rng, double rate)
{
    return -std::log(1.0 - rng.uniform()) / rate;
}

} // namespace

bool
TrafficEngine::isGold(const TrafficConfig &config, std::uint64_t user)
{
    // Top 16 bits of the mix as a fixed-point uniform in [0, 1).
    const double u =
        static_cast<double>(mix64(user ^ (config.seed * 0x51ed2701ULL))
                            >> 48)
        / 65536.0;
    return u < config.goldFraction;
}

TrafficEngine::TrafficEngine(const TrafficConfig &config)
    : config_(config), rng_(config.seed),
      sessionRng_(mix64(config.seed) | 1ULL),
      timeSeconds_(tickToSeconds(config.startAt))
{
    config_.validate();
    userStream_.assign(config_.users, 0);
    if (config_.process == ArrivalProcess::BurstySpike) {
        dwellRemainingSeconds_ =
            exponential(rng_, 1.0 / config_.meanCalmSeconds);
    }
}

void
TrafficEngine::advanceClock()
{
    switch (config_.process) {
    case ArrivalProcess::Poisson:
        timeSeconds_ += exponential(rng_, config_.ratePerSecond);
        return;
    case ArrivalProcess::Diurnal: {
        // Lewis-Shedler thinning against the peak rate: candidates
        // arrive at the peak-rate Poisson process and survive with
        // probability rate(t)/peak, yielding the exact
        // inhomogeneous process.
        const double peak = config_.ratePerSecond
            * (1.0 + config_.diurnalAmplitude);
        const double omega =
            2.0 * M_PI / config_.diurnalPeriodSeconds;
        for (;;) {
            timeSeconds_ += exponential(rng_, peak);
            const double rate = config_.ratePerSecond
                * (1.0
                   + config_.diurnalAmplitude
                       * std::sin(omega * timeSeconds_));
            if (rng_.uniform() * peak <= rate)
                return;
        }
    }
    case ArrivalProcess::BurstySpike: {
        // Competing exponentials: within a state the arrivals are
        // Poisson at the state rate; a draw that overruns the
        // state's remaining dwell is discarded at the boundary
        // (memorylessness makes the restart exact) and the state
        // flips.
        for (;;) {
            const double rate = inBurst_
                ? config_.ratePerSecond * config_.burstRateMultiplier
                : config_.ratePerSecond;
            const double gap = exponential(rng_, rate);
            if (gap <= dwellRemainingSeconds_) {
                timeSeconds_ += gap;
                dwellRemainingSeconds_ -= gap;
                return;
            }
            timeSeconds_ += dwellRemainingSeconds_;
            inBurst_ = !inBurst_;
            dwellRemainingSeconds_ = exponential(
                rng_, 1.0
                    / (inBurst_ ? config_.meanBurstSeconds
                                : config_.meanCalmSeconds));
        }
    }
    }
}

Arrival
TrafficEngine::next()
{
    advanceClock();
    Arrival arrival;
    arrival.at = seconds(timeSeconds_);
    arrival.user = config_.userZipfExponent > 0.0
        ? sessionRng_.zipf(config_.users, config_.userZipfExponent)
        : sessionRng_.uniformInt(config_.users);
    // The query selector mixes the user's own stream position so a
    // user's session replays the same queries in the same order
    // regardless of how other users' arrivals interleave.
    arrival.querySeed = mix64(
        arrival.user * 0x2545f4914f6cdd1dULL + userStream_[arrival.user]);
    ++userStream_[arrival.user];
    arrival.cls = isGold(config_, arrival.user)
        ? RequestClass::Gold
        : RequestClass::BestEffort;
    ++generated_;
    return arrival;
}

std::vector<Arrival>
TrafficEngine::generate(std::uint64_t count)
{
    std::vector<Arrival> trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        trace.push_back(next());
    return trace;
}

} // namespace sim
} // namespace ecssd
