/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator keeps time as an unsigned 64-bit tick counter with a
 * resolution of one picosecond.  A picosecond base lets us express both
 * the 400 MHz accelerator clock (2500 ticks) and multi-second end-to-end
 * runs (~10^12 ticks) without rounding error or overflow.
 */

#ifndef ECSSD_SIM_TYPES_HH
#define ECSSD_SIM_TYPES_HH

#include <cstdint>

namespace ecssd
{
namespace sim
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** The largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = 1000ULL * 1000 * 1000;
constexpr Tick tickPerS = 1000ULL * 1000 * 1000 * 1000;

/** Convert a picosecond count to ticks. */
constexpr Tick
picoseconds(double ps)
{
    return static_cast<Tick>(ps * tickPerPs + 0.5);
}

/** Convert a nanosecond count to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * tickPerNs + 0.5);
}

/** Convert a microsecond count to ticks. */
constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * tickPerUs + 0.5);
}

/** Convert a millisecond count to ticks. */
constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * tickPerMs + 0.5);
}

/** Convert a second count to ticks. */
constexpr Tick
seconds(double s)
{
    return static_cast<Tick>(s * tickPerS + 0.5);
}

/** Convert ticks back to floating-point seconds. */
constexpr double
tickToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerS);
}

/** Convert ticks back to floating-point milliseconds. */
constexpr double
tickToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerMs);
}

/** Convert ticks back to floating-point microseconds. */
constexpr double
tickToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerUs);
}

/** Convert ticks back to floating-point nanoseconds. */
constexpr double
tickToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/** Byte-size helpers. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * 1024ULL;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * 1024ULL * 1024;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * 1024ULL * 1024 * 1024;
}

constexpr std::uint64_t operator""_TiB(unsigned long long v)
{
    return v * 1024ULL * 1024 * 1024 * 1024;
}

/**
 * Time to stream @p bytes over a link of @p gbps gigabytes per second
 * (decimal GB/s, matching datasheet conventions used in the paper).
 *
 * @param bytes Payload size in bytes.
 * @param gbps Link bandwidth in GB/s (10^9 bytes per second).
 * @return Transfer time in ticks.
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gbps)
{
    // bytes / (gbps * 1e9 B/s) seconds -> ticks.
    return static_cast<Tick>(
        static_cast<double>(bytes) / (gbps * 1e9) * tickPerS + 0.5);
}

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_TYPES_HH
