#include "baseline.hh"

#include <cmath>
#include <cstdio>

namespace ecssd
{
namespace sim
{

bool
isLatencyKey(const std::string &key)
{
    return key.rfind("latency.", 0) == 0;
}

bool
isTrendKey(const std::string &key)
{
    return key.rfind("trend.", 0) == 0;
}

std::vector<std::string>
compareBaselines(const std::map<std::string, double> &baseline,
                 const std::map<std::string, double> &current,
                 const BaselineTolerance &tolerance)
{
    std::vector<std::string> failures;
    for (const auto &[key, expected] : baseline) {
        // Trend-only series (cache hit-rates and the like) are
        // recorded for plotting, not gating: skip them outright so a
        // workload shift can never fail CI through them.
        if (isTrendKey(key))
            continue;
        const auto it = current.find(key);
        if (it == current.end()) {
            // A key the baseline gates on has disappeared from the
            // current run — the regression this most often means is
            // a silently-dropped instrument, so the message says
            // which side lost it and what value went missing (a bare
            // key name makes triage start with a baseline-file dig).
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "missing metric '%s': present in baseline "
                          "(%.6g), absent from current run",
                          key.c_str(), expected);
            failures.push_back(buf);
            continue;
        }
        const double actual = it->second;
        const double tol =
            isLatencyKey(key) ? tolerance.latency : tolerance.counter;
        // Relative drift against the baseline magnitude; a tiny
        // absolute floor keeps zero-valued baselines comparable
        // without dividing by zero.
        const double denom = std::max(std::abs(expected), 1e-9);
        const double drift = std::abs(actual - expected) / denom;
        if (drift > tol) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "'%s': baseline %.6g, current %.6g "
                          "(drift %.2f%% > %.2f%%)",
                          key.c_str(), expected, actual,
                          drift * 100.0, tol * 100.0);
            failures.push_back(buf);
        }
    }
    return failures;
}

} // namespace sim
} // namespace ecssd
