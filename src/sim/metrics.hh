/**
 * @file
 * The cross-layer metrics registry.
 *
 * Components record counters (monotone event counts), gauges
 * (last-value scalars) and fixed-bucket latency histograms under
 * dotted names ("pipeline.batch_latency_ms").  The registry owns the
 * instruments and exports them as JSON (the canonical run
 * fingerprint) or a Prometheus-style text dump.
 *
 * Instrumentation is attach-based: components hold a nullable
 * MetricsRegistry pointer and skip all recording when it is null, so
 * an un-instrumented run does no observability work at all — and
 * because every instrument is *read-only* with respect to the timing
 * models, an instrumented run is bit-identical to an un-instrumented
 * one (enforced by test).
 *
 * Iteration order is name-sorted (std::map), so two registries fed
 * the same samples dump byte-identical output regardless of
 * registration order.
 */

#ifndef ECSSD_SIM_METRICS_HH
#define ECSSD_SIM_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "stats.hh"

namespace ecssd
{
namespace sim
{

/** The registry of named counters, gauges and histograms. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Master switch: while disabled, the instruments still exist but
     * counterAdd/gaugeSet/histogramSample become no-ops.  Attaching no
     * registry at all is the truly free path.
     */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Look up (creating on first use) a counter. */
    Counter &counter(const std::string &name);

    /** Look up (creating on first use) a gauge. */
    Scalar &gauge(const std::string &name);

    /**
     * Look up (creating on first use) a fixed-bucket histogram over
     * [lo, hi).  The shape is set on first creation; later lookups
     * ignore the shape arguments (and must agree, panic otherwise).
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);

    // --- Convenience recording (honors the enabled switch) --------
    void counterAdd(const std::string &name, std::uint64_t n = 1);
    void gaugeSet(const std::string &name, double v);
    void histogramSample(const std::string &name, double lo, double hi,
                         std::size_t buckets, double v);

    /** True when @p name exists (any instrument kind). */
    bool has(const std::string &name) const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /** Zero every instrument (registrations survive). */
    void reset();

    /**
     * Dump everything as one JSON object:
     *   {"counters": {...}, "gauges": {...}, "histograms": {...}}
     * Histograms expand to count/sum/min/max/p50/p95/p99/p999.
     * Deterministic: name-sorted, %.17g numbers.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Prometheus-style text exposition: one "# TYPE" line per
     * instrument, '.' mapped to '_' in names, histograms emitted as
     * cumulative _bucket{le=...} series plus _sum/_count.
     */
    void writePrometheus(std::ostream &os) const;

  private:
    bool enabled_ = true;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Scalar> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_METRICS_HH
