/**
 * @file
 * The cross-layer metrics registry.
 *
 * Components record counters (monotone event counts), gauges
 * (last-value scalars) and fixed-bucket latency histograms under
 * dotted names ("pipeline.batch_latency_ms").  The registry owns the
 * instruments and exports them as JSON (the canonical run
 * fingerprint) or a Prometheus-style text dump.
 *
 * Instrumentation is attach-based: components hold a nullable
 * MetricsRegistry pointer and skip all recording when it is null, so
 * an un-instrumented run does no observability work at all — and
 * because every instrument is *read-only* with respect to the timing
 * models, an instrumented run is bit-identical to an un-instrumented
 * one (enforced by test).
 *
 * Iteration order is name-sorted (std::map), so two registries fed
 * the same samples dump byte-identical output regardless of
 * registration order.
 *
 * Namespacing: a registry can also be constructed as a *scoped view*
 * onto another registry — every instrument name is prepended with a
 * fixed prefix and the sample lands in the parent.  Multi-tenant
 * layers hand each tenant's subsystems a "tenant.<name>."-scoped view
 * of the one export registry, so the components themselves stay
 * namespace-blind and a single-tenant run (no view) keeps its metric
 * names byte-identical.
 */

#ifndef ECSSD_SIM_METRICS_HH
#define ECSSD_SIM_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "stats.hh"

namespace ecssd
{
namespace sim
{

/** The registry of named counters, gauges and histograms. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    /**
     * A scoped view: instrument lookups and samples forward to
     * @p parent with @p prefix prepended to every name ("tenant.a."
     * turns "pipeline.batches" into "tenant.a.pipeline.batches").
     * The view owns no instruments; @p parent must outlive it.
     * Views may nest (prefixes concatenate).
     */
    MetricsRegistry(MetricsRegistry &parent, std::string prefix)
        : parent_(&parent), prefix_(std::move(prefix))
    {
    }

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Master switch: while disabled, the instruments still exist but
     * counterAdd/gaugeSet/histogramSample become no-ops.  Attaching no
     * registry at all is the truly free path.  On a scoped view the
     * switch is the parent's.
     */
    void setEnabled(bool enabled) { root().enabled_ = enabled; }
    bool enabled() const { return root().enabled_; }

    /** True when this registry is a scoped view onto another. */
    bool scoped() const { return parent_ != nullptr; }

    /** The name prefix of this view ("" on a root registry). */
    const std::string &prefix() const { return prefix_; }

    /** Look up (creating on first use) a counter. */
    Counter &counter(const std::string &name);

    /** Look up (creating on first use) a gauge. */
    Scalar &gauge(const std::string &name);

    /**
     * Look up (creating on first use) a fixed-bucket histogram over
     * [lo, hi).  The shape is set on first creation; later lookups
     * ignore the shape arguments (and must agree, panic otherwise).
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);

    // --- Convenience recording (honors the enabled switch) --------
    void counterAdd(const std::string &name, std::uint64_t n = 1);
    void gaugeSet(const std::string &name, double v);
    void histogramSample(const std::string &name, double lo, double hi,
                         std::size_t buckets, double v);

    /** True when @p name exists (any instrument kind); a view asks
     *  its root about the *prefixed* name. */
    bool has(const std::string &name) const;

    std::size_t size() const
    {
        const MetricsRegistry &r = root();
        return r.counters_.size() + r.gauges_.size()
            + r.histograms_.size();
    }

    /** Zero every instrument (registrations survive). */
    void reset();

    /**
     * Dump everything as one JSON object:
     *   {"counters": {...}, "gauges": {...}, "histograms": {...}}
     * Histograms expand to count/sum/min/max/p50/p95/p99/p999.
     * Deterministic: name-sorted, %.17g numbers.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Prometheus-style text exposition: one "# TYPE" line per
     * instrument, '.' mapped to '_' in names, histograms emitted as
     * cumulative _bucket{le=...} series plus _sum/_count.
     */
    void writePrometheus(std::ostream &os) const;

  private:
    /** The registry that actually stores the instruments. */
    MetricsRegistry &
    root()
    {
        MetricsRegistry *r = this;
        while (r->parent_)
            r = r->parent_;
        return *r;
    }

    const MetricsRegistry &
    root() const
    {
        const MetricsRegistry *r = this;
        while (r->parent_)
            r = r->parent_;
        return *r;
    }

    /** Non-null when this registry is a scoped view. */
    MetricsRegistry *parent_ = nullptr;
    /** Name prefix a view prepends before forwarding. */
    std::string prefix_;
    bool enabled_ = true;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Scalar> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_METRICS_HH
