#include "metrics.hh"

#include "json.hh"
#include "logging.hh"

namespace ecssd
{
namespace sim
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    if (parent_)
        return parent_->counter(prefix_ + name);
    return counters_[name];
}

Scalar &
MetricsRegistry::gauge(const std::string &name)
{
    if (parent_)
        return parent_->gauge(prefix_ + name);
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double lo,
                           double hi, std::size_t buckets)
{
    if (parent_)
        return parent_->histogram(prefix_ + name, lo, hi, buckets);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        ECSSD_ASSERT(it->second.lo() == lo && it->second.hi() == hi
                         && it->second.buckets() == buckets,
                     "histogram '", name,
                     "' re-registered with a different shape");
        return it->second;
    }
    return histograms_.emplace(name, Histogram(lo, hi, buckets))
        .first->second;
}

void
MetricsRegistry::counterAdd(const std::string &name, std::uint64_t n)
{
    if (enabled())
        counter(name) += n;
}

void
MetricsRegistry::gaugeSet(const std::string &name, double v)
{
    if (enabled())
        gauge(name).set(v);
}

void
MetricsRegistry::histogramSample(const std::string &name, double lo,
                                 double hi, std::size_t buckets,
                                 double v)
{
    if (enabled())
        histogram(name, lo, hi, buckets).sample(v);
}

bool
MetricsRegistry::has(const std::string &name) const
{
    if (parent_)
        return parent_->has(prefix_ + name);
    return counters_.count(name) != 0 || gauges_.count(name) != 0
        || histograms_.count(name) != 0;
}

void
MetricsRegistry::reset()
{
    MetricsRegistry &r = root();
    for (auto &[name, counter] : r.counters_)
        counter.reset();
    for (auto &[name, gauge] : r.gauges_)
        gauge.reset();
    for (auto &[name, histogram] : r.histograms_)
        histogram.reset();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    if (parent_) {
        root().writeJson(os);
        return;
    }
    JsonWriter w(os);
    w.beginObject();

    w.key("counters");
    w.beginObject();
    for (const auto &[name, counter] : counters_) {
        w.key(name);
        w.value(counter.value());
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &[name, gauge] : gauges_) {
        w.key(name);
        w.value(gauge.value());
    }
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &[name, histogram] : histograms_) {
        w.key(name);
        w.beginObject();
        w.key("count");
        w.value(histogram.totalSamples());
        w.key("sum");
        w.value(histogram.sum());
        w.key("min");
        w.value(histogram.min());
        w.key("max");
        w.value(histogram.max());
        w.key("p50");
        w.value(histogram.p50());
        w.key("p95");
        w.value(histogram.p95());
        w.key("p99");
        w.value(histogram.p99());
        w.key("p999");
        w.value(histogram.p999());
        w.key("underflow");
        w.value(histogram.underflow());
        w.key("overflow");
        w.value(histogram.overflow());
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

namespace
{

std::string
promName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
            || c == '_';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    if (parent_) {
        root().writePrometheus(os);
        return;
    }
    for (const auto &[name, counter] : counters_) {
        const std::string flat = promName(name);
        os << "# TYPE " << flat << " counter\n";
        os << flat << " " << counter.value() << "\n";
    }
    for (const auto &[name, gauge] : gauges_) {
        const std::string flat = promName(name);
        os << "# TYPE " << flat << " gauge\n";
        os << flat << " " << jsonNumber(gauge.value()) << "\n";
    }
    for (const auto &[name, histogram] : histograms_) {
        const std::string flat = promName(name);
        os << "# TYPE " << flat << " histogram\n";
        std::uint64_t cumulative = histogram.underflow();
        for (std::size_t b = 0; b < histogram.buckets(); ++b) {
            cumulative += histogram.bucketCount(b);
            // Empty buckets are elided to keep dumps readable; the
            // series stays cumulative so queries are unaffected.
            if (histogram.bucketCount(b) == 0)
                continue;
            os << flat << "_bucket{le=\""
               << jsonNumber(histogram.bucketLow(b + 1)) << "\"} "
               << cumulative << "\n";
        }
        os << flat << "_bucket{le=\"+Inf\"} "
           << histogram.totalSamples() << "\n";
        os << flat << "_sum " << jsonNumber(histogram.sum()) << "\n";
        os << flat << "_count " << histogram.totalSamples() << "\n";
    }
}

} // namespace sim
} // namespace ecssd
