/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic behaviour in the simulator flows through Rng so that a
 * run is fully reproducible from its seed.  The core generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast, has a
 * 256-bit state, and passes BigCrush.
 */

#ifndef ECSSD_SIM_RNG_HH
#define ECSSD_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace ecssd
{
namespace sim
{

/**
 * Seedable pseudo-random generator with the distributions the workload
 * generators need (uniform, gaussian, zipf, permutation).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) with rejection to avoid bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller with caching. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, computed by
     * inversion over a cached cumulative table when n is small and by
     * rejection sampling (Devroye) when n is large.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(uniformInt(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Identity permutation of size n shuffled in place. */
    std::vector<std::uint32_t> permutation(std::uint32_t n);

  private:
    std::uint64_t state_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;

    // Cached harmonic constants for repeated zipf() calls with the same
    // (n, s); recomputing generalized harmonic numbers per sample would
    // dominate workload generation time.
    std::uint64_t zipfN_ = 0;
    double zipfS_ = 0.0;
    double zipfHn_ = 0.0;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_RNG_HH
