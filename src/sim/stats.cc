#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace ecssd
{
namespace sim
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sumSquares_ += v * v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSquares_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::variance() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double v =
        sumSquares_ / static_cast<double>(count_) - m * m;
    return std::max(v, 0.0);
}

void
Percentiles::sample(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

double
Percentiles::quantile(double q) const
{
    ECSSD_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
}

void
Percentiles::reset()
{
    samples_.clear();
    sorted_ = true;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    ECSSD_ASSERT(hi > lo && buckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    if (total_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++total_;
    sum_ += v;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        const auto idx = static_cast<std::size_t>((v - lo_) / width_);
        ++counts_[std::min(idx, counts_.size() - 1)];
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    ECSSD_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    if (total_ == 0)
        return 0.0;
    // Target rank in [1, total], nearest-rank with interpolation
    // inside the covering bucket.
    const double target =
        q * static_cast<double>(total_ - 1) + 1.0;
    double cumulative = static_cast<double>(underflow_);
    if (target <= cumulative)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (in_bucket == 0.0)
            continue;
        if (target <= cumulative + in_bucket) {
            const double within = target - cumulative;
            return bucketLow(i) + width_ * (within / in_bucket);
        }
        cumulative += in_bucket;
    }
    return hi_; // rank falls in the overflow tail
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

void
StatGroup::addScalar(const std::string &name, const Scalar *stat)
{
    ECSSD_ASSERT(stat, "null scalar registered");
    scalars_[name] = stat;
}

void
StatGroup::addDistribution(const std::string &name,
                           const Distribution *stat)
{
    ECSSD_ASSERT(stat, "null distribution registered");
    distributions_[name] = stat;
}

double
StatGroup::scalar(const std::string &name) const
{
    const auto it = scalars_.find(name);
    if (it == scalars_.end())
        fatal("unknown scalar stat '", name_, ".", name, "'");
    return it->second->value();
}

const Distribution &
StatGroup::distribution(const std::string &name) const
{
    const auto it = distributions_.find(name);
    if (it == distributions_.end())
        fatal("unknown distribution stat '", name_, ".", name, "'");
    return *it->second;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : scalars_)
        os << name_ << "." << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : distributions_) {
        os << name_ << "." << name << ".count " << stat->count()
           << "\n";
        os << name_ << "." << name << ".mean " << stat->mean() << "\n";
        os << name_ << "." << name << ".min " << stat->min() << "\n";
        os << name_ << "." << name << ".max " << stat->max() << "\n";
    }
}

} // namespace sim
} // namespace ecssd
