#include "trace.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ecssd
{
namespace sim
{

namespace
{

unsigned enabledMask = 0;
bool envApplied = false;

} // namespace

void
setTraceEnabled(TraceCategory category, bool enabled)
{
    if (enabled)
        enabledMask |= static_cast<unsigned>(category);
    else
        enabledMask &= ~static_cast<unsigned>(category);
}

bool
traceEnabled(TraceCategory category)
{
    return (enabledMask & static_cast<unsigned>(category)) != 0;
}

const char *
traceCategoryName(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Flash:
        return "flash";
      case TraceCategory::Ftl:
        return "ftl";
      case TraceCategory::Dram:
        return "dram";
      case TraceCategory::Nvme:
        return "nvme";
      case TraceCategory::Pipeline:
        return "pipeline";
      case TraceCategory::Layout:
        return "layout";
      case TraceCategory::Api:
        return "api";
    }
    return "unknown";
}

void
enableTraceCategories(const std::string &list)
{
    std::istringstream stream(list);
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (token.empty())
            continue;
        if (token == "all") {
            enabledMask = ~0u;
            continue;
        }
        bool matched = false;
        for (const TraceCategory category :
             {TraceCategory::Flash, TraceCategory::Ftl,
              TraceCategory::Dram, TraceCategory::Nvme,
              TraceCategory::Pipeline, TraceCategory::Layout,
              TraceCategory::Api}) {
            if (token == traceCategoryName(category)) {
                setTraceEnabled(category, true);
                matched = true;
                break;
            }
        }
        if (!matched)
            warn("unknown trace category '", token, "'");
    }
}

void
initTraceFromEnvironment()
{
    if (envApplied)
        return;
    envApplied = true;
    if (const char *env = std::getenv("ECSSD_TRACE"))
        enableTraceCategories(env);
}

void
traceLine(TraceCategory category, Tick when,
          const std::string &message)
{
    std::fprintf(stderr, "%12.3f us  [%s] %s\n", tickToUs(when),
                 traceCategoryName(category), message.c_str());
}

} // namespace sim
} // namespace ecssd
