#include "trace.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ecssd
{
namespace sim
{

namespace
{

unsigned enabledMask = 0;
bool envApplied = false;

} // namespace

void
setTraceEnabled(TraceCategory category, bool enabled)
{
    if (enabled)
        enabledMask |= static_cast<unsigned>(category);
    else
        enabledMask &= ~static_cast<unsigned>(category);
}

bool
traceEnabled(TraceCategory category)
{
    return (enabledMask & static_cast<unsigned>(category)) != 0;
}

const char *
traceCategoryName(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Flash:
        return "flash";
      case TraceCategory::Ftl:
        return "ftl";
      case TraceCategory::Dram:
        return "dram";
      case TraceCategory::Nvme:
        return "nvme";
      case TraceCategory::Pipeline:
        return "pipeline";
      case TraceCategory::Layout:
        return "layout";
      case TraceCategory::Api:
        return "api";
    }
    return "unknown";
}

void
enableTraceCategories(const std::string &list)
{
    std::istringstream stream(list);
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (token.empty())
            continue;
        if (token == "all") {
            enabledMask = ~0u;
            continue;
        }
        bool matched = false;
        for (const TraceCategory category :
             {TraceCategory::Flash, TraceCategory::Ftl,
              TraceCategory::Dram, TraceCategory::Nvme,
              TraceCategory::Pipeline, TraceCategory::Layout,
              TraceCategory::Api}) {
            if (token == traceCategoryName(category)) {
                setTraceEnabled(category, true);
                matched = true;
                break;
            }
        }
        if (!matched)
            warn("unknown trace category '", token, "'");
    }
}

void
initTraceFromEnvironment()
{
    if (envApplied)
        return;
    envApplied = true;
    if (const char *env = std::getenv("ECSSD_TRACE"))
        enableTraceCategories(env);
}

void
traceLine(TraceCategory category, Tick when,
          const std::string &message)
{
    std::fprintf(stderr, "%12.3f us  [%s] %s\n", tickToUs(when),
                 traceCategoryName(category), message.c_str());
}

SpanTracer::SpanId
SpanTracer::begin(const std::string &name, Tick at)
{
    const SpanId id = nextId_++;
    const SpanId parent = stack_.empty() ? 0 : stack_.back().id;
    stack_.push_back(OpenSpan{
        id, parent,
        namePrefix_.empty() ? name : namePrefix_ + name, at});
    return id;
}

void
SpanTracer::end(SpanId id, Tick at)
{
    ECSSD_ASSERT(!stack_.empty(),
                 "span end with no span open (id ", id, ")");
    const OpenSpan &top = stack_.back();
    ECSSD_ASSERT(top.id == id, "mismatched span end: innermost is '",
                 top.name, "' (id ", top.id, "), got id ", id);
    ECSSD_ASSERT(at >= top.start, "span '", top.name,
                 "' ends before it starts");
    if (records_.size() < maxSpans_) {
        SpanRecord record;
        record.id = top.id;
        record.parent = top.parent;
        record.name = top.name;
        record.depth = static_cast<unsigned>(stack_.size() - 1);
        record.start = top.start;
        record.end = at;
        records_.push_back(std::move(record));
    } else {
        ++dropped_;
    }
    stack_.pop_back();
}

void
SpanTracer::reset()
{
    nextId_ = 1;
    stack_.clear();
    records_.clear();
    dropped_ = 0;
}

void
SpanTracer::writeJson(std::ostream &os) const
{
    os << "[";
    bool first = true;
    for (const SpanRecord &record : records_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"id\": " << record.id
           << ", \"parent\": " << record.parent << ", \"name\": \""
           << record.name << "\", \"depth\": " << record.depth
           << ", \"start_ps\": " << record.start
           << ", \"end_ps\": " << record.end << "}";
    }
    os << "\n]\n";
}

} // namespace sim
} // namespace ecssd
