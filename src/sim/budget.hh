/**
 * @file
 * Accounting allocator for host-bounded pipelines.
 *
 * The streaming weight deploy promises a hard ceiling on peak host
 * bytes (EcssdOptions::deployHostBudgetBytes).  Every transient host
 * allocation the pipeline makes — row scratch, the run buffer, the
 * merge read-ahead blocks, the tournament tree — charges a
 * MemoryBudget before it exists and releases when it dies, so the
 * ceiling is *enforced* (fatal on overdraft), not sampled.  The
 * high-water mark is what the boundedness tests assert against and
 * what deploy publishes as deploy.host_peak_bytes.
 */

#ifndef ECSSD_SIM_BUDGET_HH
#define ECSSD_SIM_BUDGET_HH

#include <cstdint>

#include "sim/logging.hh"

namespace ecssd
{
namespace sim
{

/** A byte budget with overdraft enforcement and a high-water mark. */
class MemoryBudget
{
  public:
    /** @param limit_bytes Hard ceiling; 0 means unlimited (the
     *  accounting still runs so the high-water mark stays honest). */
    explicit MemoryBudget(std::uint64_t limit_bytes)
        : limit_(limit_bytes)
    {
    }

    std::uint64_t limit() const { return limit_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t highWater() const { return highWater_; }

    /** Charge @p bytes; fatal (named error) on overdraft. */
    void
    charge(std::uint64_t bytes)
    {
        used_ += bytes;
        if (limit_ != 0 && used_ > limit_) {
            fatal("E_DEPLOY_BUDGET: streaming deploy needs ", used_,
                  " host bytes but deployHostBudgetBytes is ",
                  limit_);
        }
        if (used_ > highWater_)
            highWater_ = used_;
    }

    /** Release @p bytes charged earlier. */
    void
    release(std::uint64_t bytes)
    {
        ECSSD_ASSERT(bytes <= used_,
                     "memory budget release exceeds charges");
        used_ -= bytes;
    }

  private:
    std::uint64_t limit_;
    std::uint64_t used_ = 0;
    std::uint64_t highWater_ = 0;
};

/** RAII charge: holds @p bytes of @p budget for the scope. */
class BudgetCharge
{
  public:
    BudgetCharge(MemoryBudget &budget, std::uint64_t bytes)
        : budget_(budget), bytes_(bytes)
    {
        budget_.charge(bytes_);
    }

    ~BudgetCharge() { budget_.release(bytes_); }

    BudgetCharge(const BudgetCharge &) = delete;
    BudgetCharge &operator=(const BudgetCharge &) = delete;

    std::uint64_t bytes() const { return bytes_; }

    /** Grow or shrink the held charge to @p bytes. */
    void
    resize(std::uint64_t bytes)
    {
        if (bytes > bytes_)
            budget_.charge(bytes - bytes_);
        else
            budget_.release(bytes_ - bytes);
        bytes_ = bytes;
    }

  private:
    MemoryBudget &budget_;
    std::uint64_t bytes_;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_BUDGET_HH
