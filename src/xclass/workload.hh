/**
 * @file
 * Benchmark workload definitions (Table 3) and synthetic model
 * generation.
 *
 * The paper evaluates PyTorch-trained models on real datasets; we
 * synthesize weights and features with matched shapes and a skewed
 * (Zipfian) category-popularity structure, so that screening
 * selectivity, candidate discontinuity, and channel imbalance behave
 * like the real workloads.  Two tiers exist:
 *
 *  - *functional* tier: real float weight matrices for shapes that
 *    fit in memory, used by accuracy tests and examples;
 *  - *trace* tier: statistical candidate-set generation for the
 *    10M-100M category benchmarks whose weights (up to 400 GB) exist
 *    only as addresses inside the simulated flash.
 */

#ifndef ECSSD_XCLASS_WORKLOAD_HH
#define ECSSD_XCLASS_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "numeric/matrix.hh"
#include "sim/rng.hh"

namespace ecssd
{
namespace xclass
{

/** Shape and algorithm parameters of one benchmark (Table 3). */
struct BenchmarkSpec
{
    std::string name;
    /** Classification category count L. */
    std::uint64_t categories = 0;
    /** Full hidden dimension D. */
    std::uint32_t hiddenDim = 0;
    /** Projection scale K/D (paper: 0.25). */
    double projectionScale = 0.25;
    /** Fraction of rows surviving the screener (paper: ~10%). */
    double candidateRatio = 0.10;
    /**
     * Queries per batch.  Kept below the accelerator's roofline
     * ridge (6.4 FLOP/byte at 51.2 GFLOPS over 8 GB/s): candidate
     * weights are read once per batch, so the FP32 intensity is
     * 2 * batch / 4 FLOP per byte, and batch <= 12 keeps the system
     * in the paper's memory-bound regime (Fig 1 point B/C).
     */
    std::uint32_t batchSize = 8;
    /** Zipf skew of category popularity in the synthetic data. */
    double popularitySkew = 0.9;
    /**
     * Fraction of the candidate budget taken by the deterministic
     * "hot set" of head categories that appear in (almost) every
     * batch.  Real extreme-classification traffic concentrates on a
     * stable head; this is the structure the hot-degree predictor
     * learns from training-set candidate frequencies (Section 5.3).
     */
    double hotSetFraction = 0.8;
    /**
     * Per-batch churn of the non-hot candidate tail.  Candidate sets
     * are temporally sticky in real traffic (the same mid-popularity
     * categories keep clearing the threshold), which is what the
     * interleaving framework's training-set fine-tuning learns; only
     * this fraction of the tail is fresh in each batch.
     */
    double candidateChurn = 0.1;

    /** Shrunk screener dimension K. */
    std::uint32_t
    shrunkDim() const
    {
        return static_cast<std::uint32_t>(
            static_cast<double>(hiddenDim) * projectionScale);
    }

    /** FP32 weight matrix footprint in bytes. */
    std::uint64_t
    fp32WeightBytes() const
    {
        return categories * hiddenDim * 4ULL;
    }

    /** INT4 screener matrix footprint in bytes (packed nibbles). */
    std::uint64_t
    int4WeightBytes() const
    {
        return categories * shrunkDim() / 2ULL;
    }

    /** Bytes of one FP32 weight row. */
    std::uint64_t
    rowBytes() const
    {
        return hiddenDim * 4ULL;
    }
};

/** The seven benchmarks of Table 3. */
std::vector<BenchmarkSpec> table3Benchmarks();

/** Look up a Table 3 benchmark by abbreviation; fatal if unknown. */
BenchmarkSpec benchmarkByName(const std::string &name);

/** The three large-scale synthetic benchmarks used in Fig 13. */
std::vector<BenchmarkSpec> largeScaleBenchmarks();

/**
 * A scaled-down copy of @p spec with at most @p max_categories rows,
 * for functional runs and fast tests; all ratios are preserved.
 */
BenchmarkSpec scaledDown(const BenchmarkSpec &spec,
                         std::uint64_t max_categories);

/**
 * Synthesize a functional classification model: weight rows with
 * popularity-dependent norms (popular categories produce larger
 * scores, as trained classifiers do), plus query features.
 */
class SyntheticModel
{
  public:
    /**
     * Generate weights for @p spec (must fit in memory).
     *
     * @param spec Benchmark shape; categories * hiddenDim floats are
     *        allocated.
     * @param seed RNG seed.
     */
    SyntheticModel(const BenchmarkSpec &spec, std::uint64_t seed);

    const BenchmarkSpec &spec() const { return spec_; }
    const numeric::FloatMatrix &weights() const { return weights_; }

    /**
     * The K x D latent basis the weights were generated from (rows
     * orthonormal).  Trained classifier weights concentrate near a
     * low-dimensional manifold; screening with this basis plays the
     * role of the paper's *learned* approximate projection.
     */
    const numeric::FloatMatrix &basis() const { return basis_; }

    /** Popularity rank of each category (0 = most popular). */
    const std::vector<std::uint32_t> &popularityRank() const
    {
        return popularityRank_;
    }

    /**
     * Draw one query feature: a noisy copy of a popular category's
     * weight row, so true top-k answers exist and follow popularity.
     */
    std::vector<float> sampleQuery(sim::Rng &rng) const;

  private:
    BenchmarkSpec spec_;
    numeric::FloatMatrix weights_;
    numeric::FloatMatrix basis_;
    std::vector<std::uint32_t> popularityRank_;
    std::vector<std::uint32_t> rankToCategory_;
};

/**
 * Trace-tier candidate generator: per-query candidate row sets drawn
 * from a Zipfian popularity distribution over categories, without
 * materializing any weights.  Also exposes (optionally noisy) hotness
 * estimates, standing in for the INT4-row-mass predictor.
 */
class CandidateTrace
{
  public:
    /**
     * @param spec Benchmark shape.
     * @param seed RNG seed.
     * @param predictor_noise Standard deviation of the multiplicative
     *        noise on the hotness estimate (0 = oracle predictor).
     */
    CandidateTrace(const BenchmarkSpec &spec, std::uint64_t seed,
                   double predictor_noise = 0.25);

    const BenchmarkSpec &spec() const { return spec_; }

    /**
     * Candidate rows of one query batch over the whole category
     * space, sorted ascending.  The count is
     * categories * candidateRatio, drawn without replacement with
     * popularity bias.
     */
    std::vector<std::uint64_t> drawCandidates();

    /**
     * Hotness estimate of one category (higher = more likely to be a
     * candidate), as the interleaving framework predicts from the
     * INT4 row masses plus training-set fine-tuning.  Deterministic
     * per category; computed on the fly so 100M-category benchmarks
     * need no per-category arrays.
     */
    double hotness(std::uint64_t category) const;

    /** Popularity rank of @p category (0 = most popular). */
    std::uint64_t rankOf(std::uint64_t category) const;

    /** Number of deterministic hot-set categories. */
    std::uint64_t hotSetSize() const;

    /** Category at popularity rank @p rank. */
    std::uint64_t categoryAtRank(std::uint64_t rank) const;

    /** The sticky (training-set observable) tail candidate set. */
    const std::vector<std::uint64_t> &stickyTail() const
    {
        return stickyTail_;
    }

  private:
    /** Draw one fresh tail rank not in @p taken. */
    std::uint64_t drawTailCategory(
        const std::unordered_set<std::uint64_t> &taken);

    /** One keyed Feistel round over the half-width words. */
    static std::uint64_t hashRound(std::uint64_t half,
                                   std::uint64_t key);

    std::uint64_t feistelForward(std::uint64_t value) const;
    std::uint64_t feistelBackward(std::uint64_t value) const;

    BenchmarkSpec spec_;
    mutable sim::Rng rng_;
    double predictorNoise_;
    // Keyed Feistel bijection rank <-> category over [0, L) via
    // cycle-walking, so popular ranks scatter pseudo-randomly across
    // the id space without materializing a permutation array.
    unsigned halfBits_ = 1;
    std::array<std::uint64_t, 4> feistelKeys_{};
    std::uint64_t noiseSalt_ = 0;
    /** Sorted sticky tail categories (fixed at construction). */
    std::vector<std::uint64_t> stickyTail_;
};

} // namespace xclass
} // namespace ecssd

#endif // ECSSD_XCLASS_WORKLOAD_HH
