#include "workload.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "sim/logging.hh"

namespace ecssd
{
namespace xclass
{

namespace
{

BenchmarkSpec
makeSpec(const std::string &name, std::uint64_t categories,
         std::uint32_t hidden_dim)
{
    BenchmarkSpec spec;
    spec.name = name;
    spec.categories = categories;
    spec.hiddenDim = hidden_dim;
    return spec;
}

/** Splitmix-style 64-bit mix for Feistel round functions. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Deterministic per-key uniform double in [0,1) (splitmix-style). */
double
hashUniform(std::uint64_t key, std::uint64_t salt)
{
    std::uint64_t z = key + salt + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

} // namespace

std::vector<BenchmarkSpec>
table3Benchmarks()
{
    // Shapes from Table 3 plus the hidden sizes given in Section 6.1.
    std::vector<BenchmarkSpec> specs;
    specs.push_back(makeSpec("GNMT-E32K", 32317, 1024));
    specs.push_back(makeSpec("LSTM-W33K", 33278, 1500));
    specs.push_back(makeSpec("Transformer-W268K", 267744, 512));
    specs.push_back(makeSpec("XMLCNN-A670K", 670091, 512));
    specs.push_back(makeSpec("XMLCNN-S10M", 10000000, 1024));
    specs.push_back(makeSpec("XMLCNN-S50M", 50000000, 1024));
    specs.push_back(makeSpec("XMLCNN-S100M", 100000000, 1024));
    return specs;
}

BenchmarkSpec
benchmarkByName(const std::string &name)
{
    for (const BenchmarkSpec &spec : table3Benchmarks())
        if (spec.name == name)
            return spec;
    sim::fatal("unknown benchmark '", name, "'");
}

std::vector<BenchmarkSpec>
largeScaleBenchmarks()
{
    return {benchmarkByName("XMLCNN-S10M"),
            benchmarkByName("XMLCNN-S50M"),
            benchmarkByName("XMLCNN-S100M")};
}

BenchmarkSpec
scaledDown(const BenchmarkSpec &spec, std::uint64_t max_categories)
{
    BenchmarkSpec scaled = spec;
    if (scaled.categories > max_categories) {
        scaled.categories = max_categories;
        scaled.name += "-scaled";
    }
    return scaled;
}

SyntheticModel::SyntheticModel(const BenchmarkSpec &spec,
                               std::uint64_t seed)
    : spec_(spec), weights_(spec.categories, spec.hiddenDim),
      basis_(spec.shrunkDim(), spec.hiddenDim),
      popularityRank_(spec.categories)
{
    ECSSD_ASSERT(spec.categories * spec.hiddenDim
                     <= (1ULL << 28),
                 "SyntheticModel shape too large for functional tier; "
                 "use CandidateTrace");
    sim::Rng rng(seed);

    // Random popularity order over categories.
    rankToCategory_ =
        rng.permutation(static_cast<std::uint32_t>(spec.categories));
    for (std::uint32_t rank = 0;
         rank < static_cast<std::uint32_t>(spec.categories); ++rank)
        popularityRank_[rankToCategory_[rank]] = rank;

    // Orthonormal K x D basis (Gram-Schmidt on Gaussian rows).
    const std::size_t k = basis_.rows();
    const std::size_t d = basis_.cols();
    for (std::size_t i = 0; i < k; ++i) {
        std::span<float> row = basis_.row(i);
        for (float &v : row)
            v = static_cast<float>(rng.gaussian());
        for (std::size_t j = 0; j < i; ++j) {
            const std::span<const float> prev = basis_.row(j);
            double dot = 0.0;
            for (std::size_t c = 0; c < d; ++c)
                dot += static_cast<double>(row[c]) * prev[c];
            for (std::size_t c = 0; c < d; ++c)
                row[c] -= static_cast<float>(dot * prev[c]);
        }
        double norm = 0.0;
        for (const float v : row)
            norm += static_cast<double>(v) * v;
        norm = std::sqrt(std::max(norm, 1e-30));
        for (float &v : row)
            v = static_cast<float>(v / norm);
    }

    // Weights live near the K-dimensional manifold spanned by the
    // basis (as trained classifier layers do), with a small
    // off-manifold residual.  Row norms decay with popularity rank:
    // frequent categories have larger weight vectors, which is the
    // signal the hot-degree predictor exploits.
    std::vector<double> latent(k);
    for (std::size_t r = 0; r < spec.categories; ++r) {
        const double rank = popularityRank_[r];
        const double norm_scale =
            1.0 / std::pow(1.0 + rank, 0.15);
        for (double &u : latent)
            u = rng.gaussian(0.0, 0.05 * norm_scale)
                * std::sqrt(static_cast<double>(d));
        std::span<float> row = weights_.row(r);
        for (std::size_t c = 0; c < d; ++c) {
            double acc = 0.0;
            for (std::size_t i = 0; i < k; ++i)
                acc += latent[i] * basis_.at(i, c);
            // 10% off-manifold residual energy.
            acc += rng.gaussian(0.0, 0.015 * norm_scale);
            row[c] = static_cast<float>(acc);
        }
    }
}

std::vector<float>
SyntheticModel::sampleQuery(sim::Rng &rng) const
{
    // Pick a target category by popularity, then emit a noisy copy of
    // its weight row so true top-k structure exists.
    const std::uint64_t rank =
        rng.zipf(spec_.categories, spec_.popularitySkew);
    const std::uint64_t target = rankToCategory_[rank];
    const std::span<const float> row = weights_.row(target);
    std::vector<float> query(row.begin(), row.end());
    for (float &q : query)
        q = static_cast<float>(q + rng.gaussian(0.0, 0.3 * std::fabs(q)
                                                    + 0.01));
    return query;
}

CandidateTrace::CandidateTrace(const BenchmarkSpec &spec,
                               std::uint64_t seed,
                               double predictor_noise)
    : spec_(spec), rng_(seed), predictorNoise_(predictor_noise)
{
    ECSSD_ASSERT(spec.categories > 1, "trace needs > 1 category");
    // Keyed Feistel bijection over the next power of two, with
    // cycle-walking back into [0, L).  Unlike an affine map, the
    // image of a rank interval is statistically random, so the hot
    // set scatters over the id space the way real category ids do.
    halfBits_ = 1;
    while ((1ULL << (2 * halfBits_)) < spec.categories)
        ++halfBits_;
    for (auto &key : feistelKeys_)
        key = rng_.next();
    noiseSalt_ = rng_.next();

    // Build the sticky tail: the mid-popularity categories that keep
    // clearing the screening threshold batch after batch (and that
    // the training set therefore reveals to the predictor).
    const std::uint64_t want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(spec.categories)
               * spec.candidateRatio));
    const std::uint64_t hot = std::min(hotSetSize(), want);
    const std::uint64_t tail_count = want - hot;
    std::unordered_set<std::uint64_t> taken;
    taken.reserve(tail_count * 2);
    while (taken.size() < tail_count)
        taken.insert(drawTailCategory(taken));
    stickyTail_.assign(taken.begin(), taken.end());
    std::sort(stickyTail_.begin(), stickyTail_.end());
}

std::uint64_t
CandidateTrace::drawTailCategory(
    const std::unordered_set<std::uint64_t> &taken)
{
    const std::uint64_t hot = hotSetSize();
    const std::uint64_t tail_ranks = spec_.categories - hot;
    for (;;) {
        const std::uint64_t rank =
            hot + rng_.zipf(tail_ranks, spec_.popularitySkew);
        const std::uint64_t category = categoryAtRank(rank);
        if (taken.find(category) == taken.end())
            return category;
    }
}

std::uint64_t
CandidateTrace::hashRound(std::uint64_t half, std::uint64_t key)
{
    return mix64(half ^ key);
}

std::uint64_t
CandidateTrace::feistelForward(std::uint64_t value) const
{
    const std::uint64_t half_mask = (1ULL << halfBits_) - 1;
    std::uint64_t left = value >> halfBits_;
    std::uint64_t right = value & half_mask;
    for (const std::uint64_t key : feistelKeys_) {
        const std::uint64_t f =
            hashRound(right, key) & half_mask;
        const std::uint64_t new_left = right;
        right = left ^ f;
        left = new_left;
    }
    return (left << halfBits_) | right;
}

std::uint64_t
CandidateTrace::feistelBackward(std::uint64_t value) const
{
    const std::uint64_t half_mask = (1ULL << halfBits_) - 1;
    std::uint64_t left = value >> halfBits_;
    std::uint64_t right = value & half_mask;
    for (auto it = feistelKeys_.rbegin(); it != feistelKeys_.rend();
         ++it) {
        const std::uint64_t f = hashRound(left, *it) & half_mask;
        const std::uint64_t new_right = left;
        left = right ^ f;
        right = new_right;
    }
    return (left << halfBits_) | right;
}

std::uint64_t
CandidateTrace::categoryAtRank(std::uint64_t rank) const
{
    ECSSD_ASSERT(rank < spec_.categories, "rank out of range");
    // Cycle-walk: apply the bijection over the power-of-two domain
    // until the image falls back inside [0, L).
    std::uint64_t value = feistelForward(rank);
    while (value >= spec_.categories)
        value = feistelForward(value);
    return value;
}

std::uint64_t
CandidateTrace::rankOf(std::uint64_t category) const
{
    ECSSD_ASSERT(category < spec_.categories, "category out of range");
    std::uint64_t value = feistelBackward(category);
    while (value >= spec_.categories)
        value = feistelBackward(value);
    return value;
}

double
CandidateTrace::hotness(std::uint64_t category) const
{
    // Fine-tuned hot degree: the hot head is candidate in ~every
    // batch (mass ~4), the sticky tail in most batches (mass ~1),
    // and everything else decays with popularity rank.
    // Multiplicative noise stands in for predictor error.
    const std::uint64_t rank = rankOf(category);
    double mass;
    if (rank < hotSetSize()) {
        mass = 4.0;
    } else if (std::binary_search(stickyTail_.begin(),
                                  stickyTail_.end(), category)) {
        mass = 1.0 - spec_.candidateChurn;
    } else {
        mass = std::pow(static_cast<double>(rank) + 1.0,
                        -spec_.popularitySkew);
    }
    if (predictorNoise_ <= 0.0)
        return mass;
    const double u = hashUniform(category, noiseSalt_);
    // Map u to a symmetric multiplicative factor exp(noise * z) with
    // z in [-1.73, 1.73] (uniform-approx of a unit-variance draw).
    const double z = (u - 0.5) * 3.464;
    return mass * std::exp(predictorNoise_ * z);
}

std::uint64_t
CandidateTrace::hotSetSize() const
{
    const std::uint64_t want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(spec_.categories)
               * spec_.candidateRatio));
    return static_cast<std::uint64_t>(
        static_cast<double>(want) * spec_.hotSetFraction);
}

std::vector<std::uint64_t>
CandidateTrace::drawCandidates()
{
    const std::uint64_t want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(spec_.categories)
               * spec_.candidateRatio));
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(want * 2);

    // The deterministic hot head: these categories clear the
    // screening threshold for essentially every query batch.
    const std::uint64_t hot = std::min(hotSetSize(), want);
    for (std::uint64_t rank = 0; rank < hot; ++rank)
        chosen.insert(categoryAtRank(rank));

    // The sticky tail, minus this batch's churn: a random
    // candidateChurn fraction of the sticky members is replaced by
    // fresh popularity-biased draws.
    const std::uint64_t churn = static_cast<std::uint64_t>(
        static_cast<double>(stickyTail_.size())
        * spec_.candidateChurn);
    std::unordered_set<std::uint64_t> dropped;
    while (dropped.size() < churn && !stickyTail_.empty())
        dropped.insert(
            stickyTail_[rng_.uniformInt(stickyTail_.size())]);
    for (const std::uint64_t category : stickyTail_)
        if (dropped.find(category) == dropped.end())
            chosen.insert(category);
    while (chosen.size() < want && spec_.categories > hot)
        chosen.insert(drawTailCategory(chosen));

    std::vector<std::uint64_t> candidates(chosen.begin(),
                                          chosen.end());
    std::sort(candidates.begin(), candidates.end());
    return candidates;
}

} // namespace xclass
} // namespace ecssd
