/**
 * @file
 * The approximate screening algorithm for extreme classification
 * (Section 2.1, Fig 2).
 *
 * Pipeline: project the L x D FP32 weight matrix to L x K (K = D/4),
 * quantize to INT4; at inference time score all L categories with the
 * INT4 screener, keep rows whose score clears a pre-trained
 * threshold, and run full-precision classification only on those
 * candidates.
 */

#ifndef ECSSD_XCLASS_SCREENING_HH
#define ECSSD_XCLASS_SCREENING_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/autotune.hh"
#include "numeric/cfp16.hh"
#include "numeric/cfp32.hh"
#include "numeric/int4.hh"
#include "numeric/mac.hh"
#include "numeric/matrix.hh"
#include "numeric/projection.hh"
#include "sim/thread_pool.hh"
#include "xclass/workload.hh"

namespace ecssd
{
namespace xclass
{

/** How candidates are selected from screener scores. */
enum class FilterMode
{
    /** Fixed pre-trained threshold (the paper's Filter_threshold). */
    Threshold,
    /** Exact per-query top-ratio selection (idealized reference). */
    TopRatio,
};

/** The low-precision approximate screener. */
class Screener
{
  public:
    /**
     * Build the screener from full-precision weights.
     *
     * @param weights L x D FP32 weight matrix.
     * @param spec Benchmark parameters (projection scale, ratio).
     * @param seed Seed for the (random) projection.
     * @param trained_projection Optional pre-trained K x D
     *        projection (e.g. the weight manifold's basis); when
     *        null a seeded random Gaussian projection is used.
     * @param pool Optional host-compute pool: preprocessing
     *        (projection, quantization) and per-query scoring run
     *        chunked over its threads, bit-identical to the serial
     *        path for any pool size.  Must outlive the screener.
     */
    Screener(const numeric::FloatMatrix &weights,
             const BenchmarkSpec &spec, std::uint64_t seed,
             const numeric::FloatMatrix *trained_projection =
                 nullptr,
             sim::ThreadPool *pool = nullptr);

    std::size_t categories() const { return screener_.rows(); }
    std::uint32_t shrunkDim() const
    {
        return static_cast<std::uint32_t>(screener_.cols());
    }

    const numeric::Int4Matrix &weightsInt4() const
    {
        return screener_;
    }

    const numeric::Projector &projector() const { return projector_; }

    /**
     * The kernel plan tuned at construction: ISA level, row chunk
     * (the parallel grain of scoresInto/scoresBatch), query tile,
     * and the observability-only candidate timings.  Deterministic
     * for a given (shape, active ISA) — see numeric/autotune.hh.
     */
    const numeric::KernelPlan &kernelPlan() const { return plan_; }

    /** Project + quantize one full-dimension feature. */
    numeric::Int4Vector prepareFeature(
        std::span<const float> feature) const;

    /**
     * Project + quantize into an existing vector, reusing its packed
     * storage (no per-query allocation after warm-up).
     */
    void prepareFeatureInto(std::span<const float> feature,
                            numeric::Int4Vector &out) const;

    /** Screener scores of every category for a prepared feature. */
    std::vector<double> scores(
        const numeric::Int4Vector &feature) const;

    /**
     * Score into an existing vector (resized to L).  The hot path:
     * byte-wise LUT kernel, chunked over the pool when one is
     * attached.  One query at a time per screener — the internal
     * scratch buffers are not synchronized across callers.
     */
    void scoresInto(const numeric::Int4Vector &feature,
                    std::vector<double> &out) const;

    /**
     * Score @p features.size() prepared queries in one blocked
     * sweep: every weight row is decoded once per query block
     * instead of once per query.  Returns one L-length score vector
     * per query, bit-identical to calling scores() per query.
     */
    std::vector<std::vector<double>> scoresBatch(
        std::span<const numeric::Int4Vector> features) const;

    /**
     * Calibrate the threshold on @p queries so that on average a
     * candidateRatio fraction of categories clears it.
     */
    void calibrate(const std::vector<std::vector<float>> &queries);

    double threshold() const { return threshold_; }
    void setThreshold(double t) { threshold_ = t; }

    /**
     * Select candidate categories for one feature.
     *
     * @param feature Full-dimension FP32 feature.
     * @param mode Threshold (deployed behaviour) or TopRatio.
     * @return Sorted candidate category indices.
     */
    std::vector<std::uint64_t> screen(std::span<const float> feature,
                                      FilterMode mode) const;

    /** Hot-degree input of the interleaving framework: the L1 mass of
     *  each INT4 screener row (Section 5.3). */
    std::vector<double> rowAbsMasses() const;

  private:
    BenchmarkSpec spec_;
    sim::ThreadPool *pool_ = nullptr;
    numeric::Projector projector_;
    numeric::Int4Matrix screener_;
    // Tuned after screener_ exists (declaration order is the init
    // order); pins the ISA level every score call runs at.
    numeric::KernelPlan plan_;
    double threshold_ = 0.0;
    // Per-query scratch (projection output, quantized feature,
    // widened int16 feature): reused across queries so the hot path
    // stops allocating.  Guarded by the one-query-at-a-time contract
    // of scoresInto().
    mutable std::vector<float> projectedScratch_;
    mutable numeric::Int4Vector preparedScratch_;
    mutable std::vector<std::int16_t> widenedScratch_;
    mutable std::vector<double> scoreScratch_;
};

/** FP32 classification restricted to screened candidates. */
class CandidateClassifier
{
  public:
    /** Which arithmetic the full-precision stage uses. */
    enum class Datapath
    {
        /** IEEE binary32 reference. */
        Fp32,
        /** ECSSD's CFP32 + alignment-free integer MAC. */
        Cfp32AlignmentFree,
        /** Half-width CFP16 storage + alignment-free integer MAC
         *  (this repo's extension). */
        Cfp16AlignmentFree,
    };

    /**
     * @param weights The L x D FP32 matrix (kept by reference; must
     *        outlive the classifier).
     * @param pool Optional host-compute pool: pre-alignment and
     *        candidate scoring run chunked over its threads
     *        (bit-identical — every candidate's MAC is an
     *        independent output slot).
     */
    explicit CandidateClassifier(const numeric::FloatMatrix &weights,
                                 sim::ThreadPool *pool = nullptr);

    /**
     * Score @p candidates against @p feature.
     *
     * @return Scores parallel to @p candidates.
     */
    std::vector<double> scores(
        std::span<const float> feature,
        std::span<const std::uint64_t> candidates,
        Datapath datapath) const;

  private:
    const numeric::FloatMatrix &weights_;
    sim::ThreadPool *pool_ = nullptr;
    // ISA level captured at construction so every re-rank in this
    // classifier's lifetime runs the same FP32 kernel.
    numeric::IsaLevel isa_ = numeric::IsaLevel::Scalar;
    // Per-row pre-aligned weights, built lazily on first
    // alignment-free use (the offline Pre_align() of the weights).
    mutable std::vector<numeric::Cfp32Vector> alignedRows_;
    mutable bool aligned_ = false;
    mutable std::vector<numeric::Cfp16Vector> alignedRows16_;
    mutable bool aligned16_ = false;

    void ensureAligned() const;
    void ensureAligned16() const;
};

/** End-to-end approximate classifier: screen, then classify. */
class ApproximateClassifier
{
  public:
    /** Result of one query. */
    struct Prediction
    {
        /** Top-k categories, most likely first. */
        std::vector<std::uint64_t> topCategories;
        std::vector<double> topScores;
        /** Candidate count the screener produced. */
        std::size_t candidateCount = 0;
    };

    ApproximateClassifier(const numeric::FloatMatrix &weights,
                          const BenchmarkSpec &spec,
                          std::uint64_t seed,
                          const numeric::FloatMatrix
                              *trained_projection = nullptr,
                          sim::ThreadPool *pool = nullptr);

    Screener &screener() { return screener_; }
    const Screener &screener() const { return screener_; }

    /** Run the full algorithm for one query. */
    Prediction predict(
        std::span<const float> feature, std::size_t k,
        FilterMode mode = FilterMode::TopRatio,
        CandidateClassifier::Datapath datapath =
            CandidateClassifier::Datapath::Cfp32AlignmentFree) const;

    /**
     * Full-precision top-k restricted to an explicit candidate set
     * (the brownout ReducedCandidates path: the caller already
     * screened — and possibly capped — the candidates).
     */
    Prediction predictFrom(
        std::span<const float> feature,
        std::span<const std::uint64_t> candidates, std::size_t k,
        CandidateClassifier::Datapath datapath =
            CandidateClassifier::Datapath::Cfp32AlignmentFree) const;

    /**
     * Top-k by INT4 screener score alone, touching no FP32 weights
     * (the brownout ScreenerOnly path: degraded recall, near-zero
     * device work).
     */
    Prediction screenerOnly(std::span<const float> feature,
                            std::size_t k) const;

    /** Exact full-precision top-k over all L rows (the baseline). */
    Prediction exact(std::span<const float> feature,
                     std::size_t k) const;

  private:
    const numeric::FloatMatrix &weights_;
    sim::ThreadPool *pool_ = nullptr;
    Screener screener_;
    CandidateClassifier classifier_;
};

} // namespace xclass
} // namespace ecssd

#endif // ECSSD_XCLASS_SCREENING_HH
