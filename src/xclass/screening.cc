#include "screening.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "xclass/metrics.hh"

namespace ecssd
{
namespace xclass
{

Screener::Screener(const numeric::FloatMatrix &weights,
                   const BenchmarkSpec &spec, std::uint64_t seed,
                   const numeric::FloatMatrix *trained_projection,
                   sim::ThreadPool *pool)
    : spec_(spec), pool_(pool),
      projector_(trained_projection
                     ? numeric::Projector(*trained_projection)
                     : numeric::Projector(weights.cols(),
                                          spec.shrunkDim(), seed)),
      screener_(projector_.projectRows(weights, pool), pool),
      plan_(numeric::autotuneScreenerKernels(
          screener_, numeric::activeIsa(), /*measure=*/true))
{
    ECSSD_ASSERT(weights.rows() == spec.categories,
                 "weights/spec category mismatch");
    if (trained_projection) {
        ECSSD_ASSERT(trained_projection->cols() == weights.cols()
                         && trained_projection->rows()
                                == spec.shrunkDim(),
                     "trained projection shape mismatch");
    }
}

numeric::Int4Vector
Screener::prepareFeature(std::span<const float> feature) const
{
    numeric::Int4Vector out;
    prepareFeatureInto(feature, out);
    return out;
}

void
Screener::prepareFeatureInto(std::span<const float> feature,
                             numeric::Int4Vector &out) const
{
    projector_.projectInto(feature, projectedScratch_);
    numeric::quantizeVectorInto(projectedScratch_, out);
}

std::vector<double>
Screener::scores(const numeric::Int4Vector &feature) const
{
    std::vector<double> out;
    scoresInto(feature, out);
    return out;
}

void
Screener::scoresInto(const numeric::Int4Vector &feature,
                     std::vector<double> &out) const
{
    screener_.widenFeature(feature, widenedScratch_);
    out.resize(screener_.rows());
    const std::span<const std::int16_t> widened(widenedScratch_);
    // The tuned row chunk is the parallel grain: each pool task
    // streams one L2-resident slice of the packed matrix.  The
    // chunking (like the ISA level) only regroups exact integer
    // dot products, so the scores are bit-identical for any plan.
    const auto score_rows = [&](std::size_t row_begin,
                                std::size_t row_end) {
        screener_.dotRowsLut(row_begin, row_end, widened,
                             feature.scale, out.data() + row_begin,
                             plan_.isa);
    };
    if (pool_)
        pool_->parallelFor(0, screener_.rows(), plan_.rowChunk,
                           score_rows);
    else
        score_rows(0, screener_.rows());
}

std::vector<std::vector<double>>
Screener::scoresBatch(
    std::span<const numeric::Int4Vector> features) const
{
    const std::size_t queries = features.size();
    std::vector<std::vector<double>> out(queries);
    if (queries == 0)
        return out;

    // Widen every query once, contiguously, so the blocked kernel
    // can stride across them.
    const std::size_t stride = 2 * screener_.bytesPerRow();
    std::vector<std::int16_t> widened(queries * stride);
    std::vector<float> scales(queries);
    std::vector<std::int16_t> one;
    for (std::size_t q = 0; q < queries; ++q) {
        screener_.widenFeature(features[q], one);
        std::copy(one.begin(), one.end(),
                  widened.begin()
                      + static_cast<std::ptrdiff_t>(q * stride));
        scales[q] = features[q].scale;
    }
    for (std::size_t q = 0; q < queries; ++q)
        out[q].resize(screener_.rows());

    // The parallel dimension is rows: each chunk runs the blocked
    // kernel over its row range for every query, then scatters into
    // the per-query output vectors — disjoint slots, so chunk
    // execution order cannot matter.
    const auto score_rows_blocked = [&](std::size_t row_begin,
                                        std::size_t row_end) {
        // Flat chunk-local buffer, query-major, then scatter to the
        // per-query vectors in fixed order.
        const std::size_t rows = row_end - row_begin;
        std::vector<double> block(queries * rows);
        screener_.dotRowsBatchLut(row_begin, row_end, widened.data(),
                                  queries, stride, scales.data(),
                                  block.data(), rows, plan_.isa,
                                  plan_.queryTile);
        for (std::size_t q = 0; q < queries; ++q)
            std::copy(block.begin()
                          + static_cast<std::ptrdiff_t>(q * rows),
                      block.begin()
                          + static_cast<std::ptrdiff_t>((q + 1)
                                                        * rows),
                      out[q].begin()
                          + static_cast<std::ptrdiff_t>(row_begin));
    };
    if (pool_)
        pool_->parallelFor(0, screener_.rows(), plan_.rowChunk,
                           score_rows_blocked);
    else
        score_rows_blocked(0, screener_.rows());
    return out;
}

void
Screener::calibrate(const std::vector<std::vector<float>> &queries)
{
    ECSSD_ASSERT(!queries.empty(), "calibration needs queries");
    // Pool all screener scores and pick the global quantile that
    // passes candidateRatio of them: the "pre-trained threshold".
    // One blocked sweep scores every calibration query at once.
    std::vector<numeric::Int4Vector> prepared(queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q)
        prepareFeatureInto(queries[q], prepared[q]);
    const std::vector<std::vector<double>> all =
        scoresBatch(prepared);
    std::vector<double> pooled;
    pooled.reserve(queries.size() * screener_.rows());
    for (const std::vector<double> &s : all)
        pooled.insert(pooled.end(), s.begin(), s.end());
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(pooled.size())
               * spec_.candidateRatio));
    std::nth_element(pooled.begin(),
                     pooled.end() - static_cast<std::ptrdiff_t>(keep),
                     pooled.end());
    threshold_ = pooled[pooled.size() - keep];
}

std::vector<std::uint64_t>
Screener::screen(std::span<const float> feature, FilterMode mode) const
{
    prepareFeatureInto(feature, preparedScratch_);
    scoresInto(preparedScratch_, scoreScratch_);
    const std::vector<double> &s = scoreScratch_;

    std::vector<std::uint64_t> candidates;
    if (mode == FilterMode::Threshold) {
        for (std::size_t r = 0; r < s.size(); ++r)
            if (s[r] >= threshold_)
                candidates.push_back(r);
    } else {
        const std::size_t want = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(s.size())
                   * spec_.candidateRatio));
        candidates = topKIndices(std::span<const double>(s), want);
        std::sort(candidates.begin(), candidates.end());
    }
    return candidates;
}

std::vector<double>
Screener::rowAbsMasses() const
{
    std::vector<double> masses(screener_.rows());
    for (std::size_t r = 0; r < screener_.rows(); ++r)
        masses[r] = static_cast<double>(screener_.rowAbsSum(r))
            * screener_.rowScale(r);
    return masses;
}

CandidateClassifier::CandidateClassifier(
    const numeric::FloatMatrix &weights, sim::ThreadPool *pool)
    : weights_(weights), pool_(pool), isa_(numeric::activeIsa())
{
}

/** Pre-alignment rows per parallel chunk. */
static constexpr std::size_t kAlignGrain = 256;

void
CandidateClassifier::ensureAligned() const
{
    if (aligned_)
        return;
    alignedRows_.resize(weights_.rows());
    const auto align_rows = [&](std::size_t row_begin,
                                std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r)
            alignedRows_[r] =
                numeric::Cfp32Vector::preAlign(weights_.row(r));
    };
    if (pool_)
        pool_->parallelFor(0, weights_.rows(), kAlignGrain,
                           align_rows);
    else
        align_rows(0, weights_.rows());
    aligned_ = true;
}

void
CandidateClassifier::ensureAligned16() const
{
    if (aligned16_)
        return;
    alignedRows16_.resize(weights_.rows());
    const auto align_rows = [&](std::size_t row_begin,
                                std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r)
            alignedRows16_[r] =
                numeric::Cfp16Vector::preAlign(weights_.row(r));
    };
    if (pool_)
        pool_->parallelFor(0, weights_.rows(), kAlignGrain,
                           align_rows);
    else
        align_rows(0, weights_.rows());
    aligned16_ = true;
}

/** Candidate MACs per parallel chunk of the FP32 re-rank. */
static constexpr std::size_t kRerankGrain = 64;

std::vector<double>
CandidateClassifier::scores(std::span<const float> feature,
                            std::span<const std::uint64_t> candidates,
                            Datapath datapath) const
{
    std::vector<double> out(candidates.size());

    // Each candidate's MAC is computed exactly as in the serial loop
    // and lands in its own slot, so chunking over the pool cannot
    // change a single bit of the result.
    const auto run = [&](const auto &score_one) {
        const auto score_range = [&](std::size_t begin,
                                     std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                out[i] = score_one(candidates[i]);
        };
        if (pool_)
            pool_->parallelFor(0, candidates.size(), kRerankGrain,
                               score_range);
        else
            score_range(0, candidates.size());
    };

    if (datapath == Datapath::Fp32) {
        // Same binary32 pairwise-tree datapath NaiveFpMac models,
        // minus the micro-op bookkeeping: the SIMD kernel computes
        // the identical tree at every ISA level, so the re-rank
        // scores match the scalar reference bit for bit.
        run([&](std::uint64_t row) {
            return numeric::pairwiseDotF32(weights_.row(row),
                                           feature, isa_);
        });
        return out;
    }

    if (datapath == Datapath::Cfp16AlignmentFree) {
        ensureAligned16();
        const numeric::Cfp16Vector aligned_feature =
            numeric::Cfp16Vector::preAlign(feature);
        run([&](std::uint64_t row) {
            return numeric::alignmentFreeDot16(alignedRows16_[row],
                                               aligned_feature)
                .value;
        });
        return out;
    }

    ensureAligned();
    const numeric::Cfp32Vector aligned_feature =
        numeric::Cfp32Vector::preAlign(feature);
    run([&](std::uint64_t row) {
        return numeric::AlignmentFreeMac::dot(alignedRows_[row],
                                              aligned_feature)
            .value;
    });
    return out;
}

ApproximateClassifier::ApproximateClassifier(
    const numeric::FloatMatrix &weights, const BenchmarkSpec &spec,
    std::uint64_t seed,
    const numeric::FloatMatrix *trained_projection,
    sim::ThreadPool *pool)
    : weights_(weights), pool_(pool),
      screener_(weights, spec, seed, trained_projection, pool),
      classifier_(weights, pool)
{
}

ApproximateClassifier::Prediction
ApproximateClassifier::predict(
    std::span<const float> feature, std::size_t k, FilterMode mode,
    CandidateClassifier::Datapath datapath) const
{
    Prediction prediction;
    const std::vector<std::uint64_t> candidates =
        screener_.screen(feature, mode);
    prediction.candidateCount = candidates.size();

    const std::vector<double> scores =
        classifier_.scores(feature, candidates, datapath);
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t local : best) {
        prediction.topCategories.push_back(candidates[local]);
        prediction.topScores.push_back(scores[local]);
    }
    return prediction;
}

ApproximateClassifier::Prediction
ApproximateClassifier::predictFrom(
    std::span<const float> feature,
    std::span<const std::uint64_t> candidates, std::size_t k,
    CandidateClassifier::Datapath datapath) const
{
    Prediction prediction;
    prediction.candidateCount = candidates.size();
    const std::vector<double> scores =
        classifier_.scores(feature, candidates, datapath);
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t local : best) {
        prediction.topCategories.push_back(candidates[local]);
        prediction.topScores.push_back(scores[local]);
    }
    return prediction;
}

ApproximateClassifier::Prediction
ApproximateClassifier::screenerOnly(std::span<const float> feature,
                                    std::size_t k) const
{
    Prediction prediction;
    const numeric::Int4Vector prepared =
        screener_.prepareFeature(feature);
    const std::vector<double> scores = screener_.scores(prepared);
    prediction.candidateCount = 0;
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t row : best) {
        prediction.topCategories.push_back(row);
        prediction.topScores.push_back(scores[row]);
    }
    return prediction;
}

ApproximateClassifier::Prediction
ApproximateClassifier::exact(std::span<const float> feature,
                             std::size_t k) const
{
    Prediction prediction;
    std::vector<double> scores(weights_.rows());
    const auto score_rows = [&](std::size_t row_begin,
                                std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r)
            scores[r] =
                numeric::referenceDot(weights_.row(r), feature);
    };
    if (pool_)
        pool_->parallelFor(0, weights_.rows(), kRerankGrain,
                           score_rows);
    else
        score_rows(0, weights_.rows());
    prediction.candidateCount = weights_.rows();
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t row : best) {
        prediction.topCategories.push_back(row);
        prediction.topScores.push_back(scores[row]);
    }
    return prediction;
}

} // namespace xclass
} // namespace ecssd
