#include "screening.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "xclass/metrics.hh"

namespace ecssd
{
namespace xclass
{

Screener::Screener(const numeric::FloatMatrix &weights,
                   const BenchmarkSpec &spec, std::uint64_t seed,
                   const numeric::FloatMatrix *trained_projection)
    : spec_(spec),
      projector_(trained_projection
                     ? numeric::Projector(*trained_projection)
                     : numeric::Projector(weights.cols(),
                                          spec.shrunkDim(), seed)),
      screener_(projector_.projectRows(weights))
{
    ECSSD_ASSERT(weights.rows() == spec.categories,
                 "weights/spec category mismatch");
    if (trained_projection) {
        ECSSD_ASSERT(trained_projection->cols() == weights.cols()
                         && trained_projection->rows()
                                == spec.shrunkDim(),
                     "trained projection shape mismatch");
    }
}

numeric::Int4Vector
Screener::prepareFeature(std::span<const float> feature) const
{
    return numeric::quantizeVector(projector_.project(feature));
}

std::vector<double>
Screener::scores(const numeric::Int4Vector &feature) const
{
    std::vector<double> out(screener_.rows());
    for (std::size_t r = 0; r < screener_.rows(); ++r)
        out[r] = screener_.dotRow(r, feature);
    return out;
}

void
Screener::calibrate(const std::vector<std::vector<float>> &queries)
{
    ECSSD_ASSERT(!queries.empty(), "calibration needs queries");
    // Pool all screener scores and pick the global quantile that
    // passes candidateRatio of them: the "pre-trained threshold".
    std::vector<double> pooled;
    pooled.reserve(queries.size() * screener_.rows());
    for (const std::vector<float> &query : queries) {
        const numeric::Int4Vector prepared = prepareFeature(query);
        const std::vector<double> s = scores(prepared);
        pooled.insert(pooled.end(), s.begin(), s.end());
    }
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(pooled.size())
               * spec_.candidateRatio));
    std::nth_element(pooled.begin(),
                     pooled.end() - static_cast<std::ptrdiff_t>(keep),
                     pooled.end());
    threshold_ = pooled[pooled.size() - keep];
}

std::vector<std::uint64_t>
Screener::screen(std::span<const float> feature, FilterMode mode) const
{
    const numeric::Int4Vector prepared = prepareFeature(feature);
    const std::vector<double> s = scores(prepared);

    std::vector<std::uint64_t> candidates;
    if (mode == FilterMode::Threshold) {
        for (std::size_t r = 0; r < s.size(); ++r)
            if (s[r] >= threshold_)
                candidates.push_back(r);
    } else {
        const std::size_t want = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(s.size())
                   * spec_.candidateRatio));
        candidates = topKIndices(std::span<const double>(s), want);
        std::sort(candidates.begin(), candidates.end());
    }
    return candidates;
}

std::vector<double>
Screener::rowAbsMasses() const
{
    std::vector<double> masses(screener_.rows());
    for (std::size_t r = 0; r < screener_.rows(); ++r)
        masses[r] = static_cast<double>(screener_.rowAbsSum(r))
            * screener_.rowScale(r);
    return masses;
}

CandidateClassifier::CandidateClassifier(
    const numeric::FloatMatrix &weights)
    : weights_(weights)
{
}

void
CandidateClassifier::ensureAligned() const
{
    if (aligned_)
        return;
    alignedRows_.reserve(weights_.rows());
    for (std::size_t r = 0; r < weights_.rows(); ++r)
        alignedRows_.push_back(
            numeric::Cfp32Vector::preAlign(weights_.row(r)));
    aligned_ = true;
}

void
CandidateClassifier::ensureAligned16() const
{
    if (aligned16_)
        return;
    alignedRows16_.reserve(weights_.rows());
    for (std::size_t r = 0; r < weights_.rows(); ++r)
        alignedRows16_.push_back(
            numeric::Cfp16Vector::preAlign(weights_.row(r)));
    aligned16_ = true;
}

std::vector<double>
CandidateClassifier::scores(std::span<const float> feature,
                            std::span<const std::uint64_t> candidates,
                            Datapath datapath) const
{
    std::vector<double> out;
    out.reserve(candidates.size());

    if (datapath == Datapath::Fp32) {
        for (const std::uint64_t row : candidates) {
            const numeric::MacResult mac =
                numeric::NaiveFpMac::dot(weights_.row(row), feature);
            out.push_back(mac.value);
        }
        return out;
    }

    if (datapath == Datapath::Cfp16AlignmentFree) {
        ensureAligned16();
        const numeric::Cfp16Vector aligned_feature =
            numeric::Cfp16Vector::preAlign(feature);
        for (const std::uint64_t row : candidates)
            out.push_back(numeric::alignmentFreeDot16(
                              alignedRows16_[row], aligned_feature)
                              .value);
        return out;
    }

    ensureAligned();
    const numeric::Cfp32Vector aligned_feature =
        numeric::Cfp32Vector::preAlign(feature);
    for (const std::uint64_t row : candidates) {
        const numeric::MacResult mac = numeric::AlignmentFreeMac::dot(
            alignedRows_[row], aligned_feature);
        out.push_back(mac.value);
    }
    return out;
}

ApproximateClassifier::ApproximateClassifier(
    const numeric::FloatMatrix &weights, const BenchmarkSpec &spec,
    std::uint64_t seed,
    const numeric::FloatMatrix *trained_projection)
    : weights_(weights),
      screener_(weights, spec, seed, trained_projection),
      classifier_(weights)
{
}

ApproximateClassifier::Prediction
ApproximateClassifier::predict(
    std::span<const float> feature, std::size_t k, FilterMode mode,
    CandidateClassifier::Datapath datapath) const
{
    Prediction prediction;
    const std::vector<std::uint64_t> candidates =
        screener_.screen(feature, mode);
    prediction.candidateCount = candidates.size();

    const std::vector<double> scores =
        classifier_.scores(feature, candidates, datapath);
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t local : best) {
        prediction.topCategories.push_back(candidates[local]);
        prediction.topScores.push_back(scores[local]);
    }
    return prediction;
}

ApproximateClassifier::Prediction
ApproximateClassifier::exact(std::span<const float> feature,
                             std::size_t k) const
{
    Prediction prediction;
    std::vector<double> scores(weights_.rows());
    for (std::size_t r = 0; r < weights_.rows(); ++r)
        scores[r] = numeric::referenceDot(weights_.row(r), feature);
    prediction.candidateCount = weights_.rows();
    const std::vector<std::uint64_t> best =
        topKIndices(std::span<const double>(scores), k);
    for (const std::uint64_t row : best) {
        prediction.topCategories.push_back(row);
        prediction.topScores.push_back(scores[row]);
    }
    return prediction;
}

} // namespace xclass
} // namespace ecssd
