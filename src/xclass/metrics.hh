/**
 * @file
 * Quality metrics for the approximate screening evaluation: top-k
 * extraction and recall@k.
 */

#ifndef ECSSD_XCLASS_METRICS_HH
#define ECSSD_XCLASS_METRICS_HH

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace ecssd
{
namespace xclass
{

/**
 * Indices of the @p k largest values in @p scores, largest first;
 * ties broken by lower index for determinism.
 *
 * Selection is nth_element (O(n)) followed by a bounded sort of the
 * k survivors (O(k log k)) — cheaper than a heap/partial_sort pass
 * over all n when k << n, which is the screening regime (top-k of
 * hundreds of thousands of scores).  The comparator is a strict
 * total order (score descending, index ascending on ties), so the
 * output is unique and identical to a full sort's first k entries.
 */
template <typename Score>
std::vector<std::uint64_t>
topKIndices(std::span<const Score> scores, std::size_t k)
{
    k = std::min(k, scores.size());
    std::vector<std::uint64_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    const auto better = [&](std::uint64_t a, std::uint64_t b) {
        if (scores[a] != scores[b])
            return scores[a] > scores[b];
        return a < b;
    };
    if (k < scores.size()) {
        std::nth_element(order.begin(),
                         order.begin()
                             + static_cast<std::ptrdiff_t>(k),
                         order.end(), better);
        order.resize(k);
    }
    std::sort(order.begin(), order.end(), better);
    return order;
}

/**
 * Recall@k: |truth ∩ approx| / |truth|.
 *
 * @param truth Exact top-k set.
 * @param approx Approximate top-k set.
 */
inline double
recall(std::span<const std::uint64_t> truth,
       std::span<const std::uint64_t> approx)
{
    if (truth.empty())
        return 1.0;
    std::vector<std::uint64_t> sorted_truth(truth.begin(),
                                            truth.end());
    std::sort(sorted_truth.begin(), sorted_truth.end());
    std::size_t hits = 0;
    for (const std::uint64_t idx : approx) {
        if (std::binary_search(sorted_truth.begin(),
                               sorted_truth.end(), idx))
            ++hits;
    }
    return static_cast<double>(hits)
        / static_cast<double>(truth.size());
}

} // namespace xclass
} // namespace ecssd

#endif // ECSSD_XCLASS_METRICS_HH
