/**
 * @file
 * The assembled ECSSD system: SSD substrate + inserted accelerator +
 * data layout + screening, with the architecture knobs that the
 * paper's ablations flip (MAC datapath, layout strategy, INT4
 * placement, stage overlap, screening on/off).
 */

#ifndef ECSSD_ECSSD_SYSTEM_HH
#define ECSSD_ECSSD_SYSTEM_HH

#include <memory>
#include <string>

#include "accel/pipeline.hh"
#include "circuit/energy.hh"
#include "layout/strategy.hh"
#include "sim/event_queue.hh"
#include "sim/thread_pool.hh"
#include "ssdsim/ssd.hh"
#include "xclass/workload.hh"

namespace ecssd
{

/** Architecture knobs of one ECSSD configuration. */
struct EcssdOptions
{
    circuit::FpMacKind fpKind = circuit::FpMacKind::AlignmentFree;
    layout::LayoutKind layoutKind =
        layout::LayoutKind::LearningAdaptive;
    accel::Int4Placement int4Placement = accel::Int4Placement::Dram;
    bool overlapStages = true;
    bool screening = true;
    /** On-flash weight precision (CFP16 halves flash traffic). */
    accel::WeightPrecision weightPrecision =
        accel::WeightPrecision::Cfp32;
    /** Reaction to uncorrectable candidate-row reads. */
    accel::DegradedReadPolicy degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;
    /** Hot-degree predictor noise for trace-tier runs. */
    double predictorNoise = 0.25;
    /**
     * Host-compute worker threads (functional tier and scale-out
     * fan-out).  Wall-clock only: results and simulated time are
     * bit-identical for any value (see sim::ThreadPool).
     */
    unsigned threads = 1;
    /**
     * Host-compute ISA request ("auto", "scalar", "vector", "avx2",
     * "avx512").  Applied process-wide when the system is built; the
     * ECSSD_ISA environment variable, when set, wins over this field
     * (so goldens can be replayed pinned).  Wall-clock only: every
     * level computes bit-identical results (numeric/kernels.hh), and
     * simulated device time never depends on it.
     */
    std::string isa = "auto";
    std::uint64_t seed = 1;
    ssdsim::SsdConfig ssd = ssdsim::SsdConfig{};
    /** DRAM hot-row candidate cache (capacityBytes = 0: disabled,
     *  bit-identical to a cache-less build). */
    accel::CacheConfig cache;

    /**
     * Validate the option set, dying fatally (sim::FatalError) on an
     * inconsistent configuration — the EcssdOptions twin of
     * SsdConfig::validate().  With a @p spec the capacity checks run
     * too: the INT4 screener plus the hot-row cache must fit the SSD
     * DRAM.  Also validates the embedded SsdConfig.
     */
    void validate(const xclass::BenchmarkSpec *spec = nullptr) const;

    /** The full ECSSD design point (all techniques on). */
    static EcssdOptions
    full()
    {
        return EcssdOptions{};
    }

    /**
     * The Fig 8 starting baseline: naive FP MAC, sequential storing,
     * homogeneous data layout.
     */
    static EcssdOptions
    startingBaseline()
    {
        EcssdOptions options;
        options.fpKind = circuit::FpMacKind::Naive;
        options.layoutKind = layout::LayoutKind::Sequential;
        options.int4Placement = accel::Int4Placement::Flash;
        return options;
    }
};

/** Human-readable one-line description of an option set. */
std::string describe(const EcssdOptions &options);

/**
 * Analytic weight-deployment (preparation) time of @p spec on a
 * device with @p config: the 4-bit matrix streams into DRAM, the
 * 32-bit matrix programs into flash with all channels in parallel.
 * Free-standing so redeploy planners can price a version *before*
 * building a system for it.  Fatal when the INT4 screener does not
 * fit the SSD DRAM.
 */
sim::Tick estimateDeployTime(const xclass::BenchmarkSpec &spec,
                             const ssdsim::SsdConfig &config);

/**
 * One ECSSD instance bound to a workload.
 *
 * Owns the event queue, SSD device, layout, trace generator, and
 * pipeline, and exposes paper-style experiment entry points.
 */
class EcssdSystem
{
  public:
    EcssdSystem(const xclass::BenchmarkSpec &spec,
                const EcssdOptions &options);

    const xclass::BenchmarkSpec &spec() const { return spec_; }
    const EcssdOptions &options() const { return options_; }
    ssdsim::SsdDevice &ssd() { return *ssd_; }
    accel::InferencePipeline &pipeline() { return *pipeline_; }
    const layout::LayoutStrategy &strategy() const
    {
        return *strategy_;
    }

    /** The host-compute pool (options.threads workers; never null —
     *  a 1-thread pool runs everything inline). */
    sim::ThreadPool &threadPool() { return *threadPool_; }

    /**
     * Run @p batches trace-driven inference batches and aggregate
     * timing.  Timelines reset first, so calls are independent.
     */
    accel::RunResult runInference(unsigned batches);

    /** Run with an external candidate source (functional tier). */
    accel::RunResult runInferenceWith(accel::CandidateSource &source,
                                      unsigned batches);

    /**
     * Energy breakdown of a completed run: flash/DRAM/link activity
     * plus accelerator dynamic and device background power.
     *
     * @pre @p result came from the most recent runInference*() call
     *      on this system (the device counters must match).
     */
    circuit::EnergyBreakdown estimateRunEnergy(
        const accel::RunResult &result) const;

    /**
     * Analytic estimate of the weight-deployment (preparation) time:
     * the 4-bit matrix streams into DRAM, the 32-bit matrix programs
     * into flash with all channels in parallel.
     */
    sim::Tick deployTimeEstimate() const;

    /**
     * SMART-style health snapshot of the underlying device at tick
     * @p now.  @p now is wall-clock device lifetime, not a per-batch
     * tick: retention ages are measured against it, so serving layers
     * pass their cumulative service time.
     */
    ssdsim::HealthReport
    health(sim::Tick now) const
    {
        ssdsim::HealthReport report = ssd_->health(now);
        report.deployEpoch = deployEpoch_;
        report.weightVersion = weightVersion_;
        return report;
    }

    /**
     * Stamp the serving identity a versioned layer (EcssdApi, the
     * server, the fleet) gave this system.  Surfaces in health() and,
     * when the version is nonzero, in publishMetrics() — unversioned
     * systems keep their metrics JSON byte-identical.
     */
    void
    setDeployVersion(std::uint64_t epoch, std::uint64_t version)
    {
        deployEpoch_ = epoch;
        weightVersion_ = version;
    }

    std::uint64_t deployEpoch() const { return deployEpoch_; }
    std::uint64_t weightVersion() const { return weightVersion_; }

    /**
     * Attach (or detach, with nullptr) observability sinks to the
     * pipeline and device.  The tracer sees pipeline phase spans with
     * nested flash busy intervals; the registry sees live
     * "pipeline.*" counters/histograms.  Device-side snapshots are
     * published explicitly via publishMetrics().
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /**
     * Snapshot device-side state ("flash.*", "ftl.*", "ssd.*") and
     * the run-level aggregates of @p result ("run.*") into
     * @p registry.
     */
    void publishMetrics(sim::MetricsRegistry &registry,
                        const accel::RunResult &result) const;

  private:
    xclass::BenchmarkSpec spec_;
    EcssdOptions options_;
    std::unique_ptr<sim::ThreadPool> threadPool_;
    std::unique_ptr<sim::EventQueue> queue_;
    std::unique_ptr<ssdsim::SsdDevice> ssd_;
    std::unique_ptr<accel::TraceSource> trace_;
    std::unique_ptr<layout::LayoutStrategy> strategy_;
    std::unique_ptr<accel::InferencePipeline> pipeline_;
    /** Serving identity (0/0 until a versioned layer stamps it). */
    std::uint64_t deployEpoch_ = 0;
    std::uint64_t weightVersion_ = 0;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SYSTEM_HH
