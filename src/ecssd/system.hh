/**
 * @file
 * The assembled ECSSD system: SSD substrate + inserted accelerator +
 * data layout + screening, with the architecture knobs that the
 * paper's ablations flip (MAC datapath, layout strategy, INT4
 * placement, stage overlap, screening on/off).
 */

#ifndef ECSSD_ECSSD_SYSTEM_HH
#define ECSSD_ECSSD_SYSTEM_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/pipeline.hh"
#include "circuit/energy.hh"
#include "ecssd/tenant.hh"
#include "layout/strategy.hh"
#include "sim/event_queue.hh"
#include "sim/thread_pool.hh"
#include "ssdsim/ssd.hh"
#include "xclass/workload.hh"

namespace ecssd
{

/**
 * Background re-layout policy: when the DRAM row cache's decayed
 * observed-frequency counters show the channel traffic diverging
 * from what the layout's hot-degree predictor promised, an FTL-level
 * migration task re-homes the hottest mis-placed page groups onto
 * the under-loaded channels, under an IO-budget share (the patrol
 * scrub's pattern).  Disabled by default: a disabled config is
 * byte-identical to a build without the subsystem.
 */
struct RelayoutConfig
{
    bool enabled = false;
    /** Divergence (1 - observed channel balance) that triggers a
     *  migration pass; below it relayoutStep() only measures. */
    double divergenceThreshold = 0.25;
    /** Max flash pages migrated per relayoutStep() call. */
    unsigned pageBudget = 64;
    /** Device-time share the migration task may consume: its flash
     *  busy time is stretched by 1/fraction, exactly like the staged
     *  redeploy's StagingLedger. */
    double ioBudgetFraction = 0.2;
};

/** Lifetime counters of the background re-layout task. */
struct RelayoutStats
{
    /** relayoutStep() calls that ran the divergence check. */
    std::uint64_t passes = 0;
    /** Passes that crossed the threshold and migrated. */
    std::uint64_t migrationPasses = 0;
    /** Page groups re-homed onto another channel. */
    std::uint64_t rowsMigrated = 0;
    /** Flash pages moved for those groups. */
    std::uint64_t pagesMoved = 0;
    /** Divergence measured by the most recent pass. */
    double lastDivergence = 0.0;
    /** Observed channel balance after the most recent pass
     *  (mean/max, 1.0 = perfectly balanced). */
    double recoveredBalance = 1.0;
};

/** Architecture knobs of one ECSSD configuration. */
struct EcssdOptions
{
    circuit::FpMacKind fpKind = circuit::FpMacKind::AlignmentFree;
    layout::LayoutKind layoutKind =
        layout::LayoutKind::LearningAdaptive;
    accel::Int4Placement int4Placement = accel::Int4Placement::Dram;
    bool overlapStages = true;
    bool screening = true;
    /** On-flash weight precision (CFP16 halves flash traffic). */
    accel::WeightPrecision weightPrecision =
        accel::WeightPrecision::Cfp32;
    /** Reaction to uncorrectable candidate-row reads. */
    accel::DegradedReadPolicy degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;
    /** Hot-degree predictor noise for trace-tier runs. */
    double predictorNoise = 0.25;
    /**
     * Host-compute worker threads (functional tier and scale-out
     * fan-out).  Wall-clock only: results and simulated time are
     * bit-identical for any value (see sim::ThreadPool).
     */
    unsigned threads = 1;
    /**
     * Host-compute ISA request ("auto", "scalar", "vector", "avx2",
     * "avx512").  Applied process-wide when the system is built; the
     * ECSSD_ISA environment variable, when set, wins over this field
     * (so goldens can be replayed pinned).  Wall-clock only: every
     * level computes bit-identical results (numeric/kernels.hh), and
     * simulated device time never depends on it.
     */
    std::string isa = "auto";
    std::uint64_t seed = 1;
    ssdsim::SsdConfig ssd = ssdsim::SsdConfig{};
    /** DRAM hot-row candidate cache (capacityBytes = 0: disabled,
     *  bit-identical to a cache-less build). */
    accel::CacheConfig cache;
    /**
     * Hard ceiling on transient host bytes during a *streaming*
     * weight deploy (EcssdApi::weightDeployStreaming): enforced by
     * an accounting allocator, fatal (E_DEPLOY_BUDGET) on overdraft.
     * 0 = unlimited.  The stop-the-world weightDeploy() ignores it.
     */
    std::uint64_t deployHostBudgetBytes = 0;
    /** Background re-layout policy (disabled by default). */
    RelayoutConfig relayout;
    /**
     * Tenants to admit at construction (EcssdApi::createTenant runs
     * for each).  Empty (the default) is the single-tenant device,
     * byte-identical to a build without the tenant layer.
     */
    std::vector<TenantConfig> tenants;

    /**
     * Validate the option set, dying fatally (sim::FatalError) on an
     * inconsistent configuration — the EcssdOptions twin of
     * SsdConfig::validate().  With a @p spec the capacity checks run
     * too: the INT4 screener plus the hot-row cache must fit the SSD
     * DRAM.  Also validates the embedded SsdConfig.
     */
    void validate(const xclass::BenchmarkSpec *spec = nullptr) const;

    /** The full ECSSD design point (all techniques on). */
    static EcssdOptions
    full()
    {
        return EcssdOptions{};
    }

    /**
     * The Fig 8 starting baseline: naive FP MAC, sequential storing,
     * homogeneous data layout.
     */
    static EcssdOptions
    startingBaseline()
    {
        EcssdOptions options;
        options.fpKind = circuit::FpMacKind::Naive;
        options.layoutKind = layout::LayoutKind::Sequential;
        options.int4Placement = accel::Int4Placement::Flash;
        return options;
    }

    class Builder;

    /** Start a validated option build (see EcssdOptions::Builder). */
    static Builder builder();
};

/**
 * Fluent, validated construction of an option set:
 *
 *   EcssdOptions options = EcssdOptions::builder()
 *                              .threads(8)
 *                              .cacheMb(64)
 *                              .tenant(tenant_a)
 *                              .build();
 *
 * build() runs validate() exactly once — replacing the ad-hoc
 * mutate-then-maybe-validate pattern where half the call sites forgot
 * the validate and the other half ran it twice.
 */
class EcssdOptions::Builder
{
  public:
    Builder() = default;

    /** Start from an explicit base (e.g. startingBaseline()). */
    explicit Builder(EcssdOptions base) : options_(std::move(base)) {}

    Builder &
    mac(circuit::FpMacKind kind)
    {
        options_.fpKind = kind;
        return *this;
    }

    Builder &
    layout(layout::LayoutKind kind)
    {
        options_.layoutKind = kind;
        return *this;
    }

    Builder &
    int4Placement(accel::Int4Placement placement)
    {
        options_.int4Placement = placement;
        return *this;
    }

    Builder &
    overlapStages(bool on)
    {
        options_.overlapStages = on;
        return *this;
    }

    Builder &
    screening(bool on)
    {
        options_.screening = on;
        return *this;
    }

    Builder &
    weightPrecision(accel::WeightPrecision precision)
    {
        options_.weightPrecision = precision;
        return *this;
    }

    Builder &
    degradedPolicy(accel::DegradedReadPolicy policy)
    {
        options_.degradedPolicy = policy;
        return *this;
    }

    Builder &
    predictorNoise(double noise)
    {
        options_.predictorNoise = noise;
        return *this;
    }

    Builder &
    threads(unsigned count)
    {
        options_.threads = count;
        return *this;
    }

    Builder &
    isa(std::string level)
    {
        options_.isa = std::move(level);
        return *this;
    }

    Builder &
    seed(std::uint64_t value)
    {
        options_.seed = value;
        return *this;
    }

    Builder &
    ssd(const ssdsim::SsdConfig &config)
    {
        options_.ssd = config;
        return *this;
    }

    Builder &
    cacheBytes(std::uint64_t bytes)
    {
        options_.cache.capacityBytes = bytes;
        return *this;
    }

    Builder &
    cacheMb(std::uint64_t mib)
    {
        return cacheBytes(mib << 20);
    }

    Builder &
    cacheAdmission(accel::CacheConfig::Admission admission)
    {
        options_.cache.admission = admission;
        return *this;
    }

    Builder &
    deployHostBudgetBytes(std::uint64_t bytes)
    {
        options_.deployHostBudgetBytes = bytes;
        return *this;
    }

    Builder &
    relayout(const RelayoutConfig &config)
    {
        options_.relayout = config;
        return *this;
    }

    /** Admit one tenant (repeatable). */
    Builder &
    tenant(TenantConfig config)
    {
        options_.tenants.push_back(std::move(config));
        return *this;
    }

    /**
     * Finish: validates the assembled option set exactly once
     * (dying fatally on an inconsistent configuration) and returns
     * it.  The builder stays usable — build() again after further
     * setters re-validates.
     */
    EcssdOptions
    build() const
    {
        options_.validate();
        return options_;
    }

  private:
    EcssdOptions options_;
};

inline EcssdOptions::Builder
EcssdOptions::builder()
{
    return Builder{};
}

/** Human-readable one-line description of an option set. */
std::string describe(const EcssdOptions &options);

/**
 * Analytic weight-deployment (preparation) time of @p spec on a
 * device with @p config: the 4-bit matrix streams into DRAM, the
 * 32-bit matrix programs into flash with all channels in parallel.
 * Free-standing so redeploy planners can price a version *before*
 * building a system for it.  Fatal when the INT4 screener does not
 * fit the SSD DRAM.
 */
sim::Tick estimateDeployTime(const xclass::BenchmarkSpec &spec,
                             const ssdsim::SsdConfig &config);

/**
 * One ECSSD instance bound to a workload.
 *
 * Owns the event queue, SSD device, layout, trace generator, and
 * pipeline, and exposes paper-style experiment entry points.
 */
class EcssdSystem
{
  public:
    EcssdSystem(const xclass::BenchmarkSpec &spec,
                const EcssdOptions &options);

    const xclass::BenchmarkSpec &spec() const { return spec_; }
    const EcssdOptions &options() const { return options_; }
    ssdsim::SsdDevice &ssd() { return *ssd_; }
    accel::InferencePipeline &pipeline() { return *pipeline_; }
    const layout::LayoutStrategy &strategy() const
    {
        return *strategy_;
    }

    /** The host-compute pool (options.threads workers; never null —
     *  a 1-thread pool runs everything inline). */
    sim::ThreadPool &threadPool() { return *threadPool_; }

    /**
     * Run @p batches trace-driven inference batches and aggregate
     * timing.  Timelines reset first, so calls are independent.
     */
    accel::RunResult runInference(unsigned batches);

    /** Run with an external candidate source (functional tier). */
    accel::RunResult runInferenceWith(accel::CandidateSource &source,
                                      unsigned batches);

    /**
     * Energy breakdown of a completed run: flash/DRAM/link activity
     * plus accelerator dynamic and device background power.
     *
     * @pre @p result came from the most recent runInference*() call
     *      on this system (the device counters must match).
     */
    circuit::EnergyBreakdown estimateRunEnergy(
        const accel::RunResult &result) const;

    /**
     * Analytic estimate of the weight-deployment (preparation) time:
     * the 4-bit matrix streams into DRAM, the 32-bit matrix programs
     * into flash with all channels in parallel.
     */
    sim::Tick deployTimeEstimate() const;

    /**
     * SMART-style health snapshot of the underlying device at tick
     * @p now.  @p now is wall-clock device lifetime, not a per-batch
     * tick: retention ages are measured against it, so serving layers
     * pass their cumulative service time.
     */
    ssdsim::HealthReport
    health(sim::Tick now) const
    {
        ssdsim::HealthReport report = ssd_->health(now);
        report.deployEpoch = deployEpoch_;
        report.weightVersion = weightVersion_;
        return report;
    }

    /**
     * Stamp the serving identity a versioned layer (EcssdApi, the
     * server, the fleet) gave this system.  Surfaces in health() and,
     * when the version is nonzero, in publishMetrics() — unversioned
     * systems keep their metrics JSON byte-identical.
     */
    void
    setDeployVersion(std::uint64_t epoch, std::uint64_t version)
    {
        deployEpoch_ = epoch;
        weightVersion_ = version;
    }

    std::uint64_t deployEpoch() const { return deployEpoch_; }
    std::uint64_t weightVersion() const { return weightVersion_; }

    /**
     * One background re-layout pass at tick @p now: measure how far
     * the DRAM row cache's observed channel traffic has diverged
     * from the layout's balanced prediction, and — past the
     * configured threshold — migrate the hottest mis-placed page
     * groups from over- to under-loaded channels through the FTL
     * (cache coherence via the relocation listener), at most
     * pageBudget pages, time-stretched by the IO-budget share.
     *
     * No-op (returns @p now) when re-layout is disabled, the layout
     * is not learning-adaptive, or the cache is absent.
     *
     * @return Completion tick of the budgeted pass.
     */
    sim::Tick relayoutStep(sim::Tick now);

    const RelayoutStats &relayoutStats() const
    {
        return relayoutStats_;
    }

    /**
     * Snapshot re-layout state ("relayout.*" gauges) into
     * @p registry; no-op until a first relayoutStep() actually ran,
     * so never-relayouting runs keep their metrics byte-identical.
     */
    void publishRelayoutMetrics(sim::MetricsRegistry &registry) const;

    /**
     * Attach (or detach, with nullptr) observability sinks to the
     * pipeline and device.  The tracer sees pipeline phase spans with
     * nested flash busy intervals; the registry sees live
     * "pipeline.*" counters/histograms.  Device-side snapshots are
     * published explicitly via publishMetrics().
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /**
     * Snapshot device-side state ("flash.*", "ftl.*", "ssd.*") and
     * the run-level aggregates of @p result ("run.*") into
     * @p registry.
     */
    void publishMetrics(sim::MetricsRegistry &registry,
                        const accel::RunResult &result) const;

  private:
    xclass::BenchmarkSpec spec_;
    EcssdOptions options_;
    std::unique_ptr<sim::ThreadPool> threadPool_;
    std::unique_ptr<sim::EventQueue> queue_;
    std::unique_ptr<ssdsim::SsdDevice> ssd_;
    std::unique_ptr<accel::TraceSource> trace_;
    std::unique_ptr<layout::LayoutStrategy> strategy_;
    /** The strategy downcast when it is mutable (learning-adaptive):
     *  the re-layout task's mutation handle; null otherwise. */
    layout::LearningAdaptiveLayout *adaptive_ = nullptr;
    std::unique_ptr<accel::InferencePipeline> pipeline_;
    RelayoutStats relayoutStats_;
    /** Serving identity (0/0 until a versioned layer stamps it). */
    std::uint64_t deployEpoch_ = 0;
    std::uint64_t weightVersion_ = 0;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SYSTEM_HH
