#include "system.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "numeric/kernels.hh"
#include "sim/logging.hh"

namespace ecssd
{

void
EcssdOptions::validate(const xclass::BenchmarkSpec *spec) const
{
    if (threads == 0)
        sim::fatal("EcssdOptions: threads must be >= 1");
    if (!std::isfinite(predictorNoise) || predictorNoise < 0.0
        || predictorNoise > 16.0)
        sim::fatal("EcssdOptions: predictorNoise must be in [0, 16], "
                   "got ",
                   predictorNoise);
    if (cache.associativity == 0)
        sim::fatal("EcssdOptions: cache associativity must be >= 1");
    if (!numeric::isValidIsaRequest(isa))
        sim::fatal("EcssdOptions: unknown isa '", isa,
                   "' (want scalar|vector|avx2|avx512|auto)");
    if (relayout.enabled) {
        if (!std::isfinite(relayout.divergenceThreshold)
            || relayout.divergenceThreshold < 0.0
            || relayout.divergenceThreshold > 1.0)
            sim::fatal("EcssdOptions: relayout divergence threshold "
                       "must be in [0, 1], got ",
                       relayout.divergenceThreshold);
        if (relayout.pageBudget == 0)
            sim::fatal(
                "EcssdOptions: relayout pageBudget must be >= 1");
        if (!std::isfinite(relayout.ioBudgetFraction)
            || relayout.ioBudgetFraction <= 0.0
            || relayout.ioBudgetFraction > 1.0)
            sim::fatal("EcssdOptions: relayout IO-budget fraction "
                       "must be in (0, 1], got ",
                       relayout.ioBudgetFraction);
    }
    if (const char *env = std::getenv("ECSSD_ISA");
        env != nullptr && !numeric::isValidIsaRequest(env))
        sim::fatal("EcssdOptions: unknown ECSSD_ISA '", env,
                   "' (want scalar|vector|avx2|avx512|auto)");
    ssd.validate();
    if (!tenants.empty()) {
        std::uint64_t partitioned = 0;
        for (std::size_t a = 0; a < tenants.size(); ++a) {
            tenants[a].validate();
            for (std::size_t b = a + 1; b < tenants.size(); ++b) {
                if (tenants[a].name == tenants[b].name)
                    sim::fatal("EcssdOptions: duplicate tenant '",
                               tenants[a].name, "'");
            }
            partitioned += tenants[a].dramBytes;
        }
        if (partitioned > ssd.dramBytes)
            sim::fatal("EcssdOptions: tenant DRAM partitions (",
                       partitioned, " bytes) over-subscribe the SSD "
                       "DRAM (", ssd.dramBytes, " bytes)");
    }
    if (spec != nullptr) {
        // DRAM residency: the INT4 screener claims its bytes first;
        // the hot-row cache may only take what is left.  (A screener
        // that alone exceeds DRAM is refused later, by
        // deployTimeEstimate() — Section 7.1's scale-out case.)
        const std::uint64_t screener_bytes =
            int4Placement == accel::Int4Placement::Dram
            ? spec->int4WeightBytes()
            : 0;
        const std::uint64_t remaining =
            ssd.dramBytes > screener_bytes
            ? ssd.dramBytes - screener_bytes
            : 0;
        if (cache.capacityBytes > remaining)
            sim::fatal("EcssdOptions: hot-row cache (",
                       cache.capacityBytes,
                       " bytes) exceeds the SSD DRAM left after "
                       "screener residency (", remaining, " bytes)");
    }
}

std::string
describe(const EcssdOptions &options)
{
    std::ostringstream os;
    os << "fp=" << circuit::toString(options.fpKind)
       << " layout=" << layout::toString(options.layoutKind)
       << " int4="
       << (options.int4Placement == accel::Int4Placement::Dram
               ? "dram"
               : "flash")
       << " overlap=" << (options.overlapStages ? "on" : "off")
       << " screening=" << (options.screening ? "on" : "off");
    if (options.isa != "auto" && !options.isa.empty())
        os << " isa=" << options.isa;
    if (options.ssd.uncorrectableReadRate > 0.0)
        os << " degraded-policy="
           << accel::toString(options.degradedPolicy);
    if (options.cache.enabled())
        os << " cache=" << (options.cache.capacityBytes >> 20)
           << "MiB/" << accel::toString(options.cache.admission);
    // Tenant partition table, only for multi-tenant option sets —
    // tenant-less configs keep describe() byte-identical.
    if (!options.tenants.empty()) {
        os << " tenants=[";
        bool first = true;
        for (const TenantConfig &tenant : options.tenants) {
            if (!first)
                os << " ";
            first = false;
            os << tenant.name << ":" << (tenant.dramBytes >> 20)
               << "/" << (tenant.cacheQuotaBytes >> 20) << "MiB";
        }
        os << "]";
    }
    return os.str();
}

namespace
{

/** Validate @p options against @p spec before any member uses it. */
const EcssdOptions &
validated(const EcssdOptions &options,
          const xclass::BenchmarkSpec &spec)
{
    options.validate(&spec);
    return options;
}

} // namespace

EcssdSystem::EcssdSystem(const xclass::BenchmarkSpec &spec,
                         const EcssdOptions &options)
    : spec_(spec), options_(validated(options, spec)),
      threadPool_(
          std::make_unique<sim::ThreadPool>(options.threads)),
      queue_(std::make_unique<sim::EventQueue>()),
      ssd_(std::make_unique<ssdsim::SsdDevice>(options.ssd, *queue_)),
      trace_(std::make_unique<accel::TraceSource>(
          spec, options.seed, options.predictorNoise))
{
    // Pin the host-compute ISA before any functional-tier component
    // (screener, classifier) captures it.  ECSSD_ISA, when set, wins
    // over the option so goldens can be replayed pinned.
    numeric::applyIsaRequest(options_.isa);

    // Build the weight placement at page-group granularity (rows
    // narrower than a flash page share a page).  The learning-based
    // layout consumes the hot-degree predictions (here: the trace's
    // hotness oracle, standing in for INT4 row masses fine-tuned on
    // training data); a group is as hot as its hottest member.
    const std::uint64_t row_bytes =
        options.weightPrecision == accel::WeightPrecision::Cfp16
        ? spec.hiddenDim * 2ULL
        : spec.rowBytes();
    const std::uint64_t rows_per_page = std::max<std::uint64_t>(
        1, options.ssd.pageBytes / row_bytes);
    const std::uint64_t groups =
        (spec.categories + rows_per_page - 1) / rows_per_page;
    const xclass::CandidateTrace &trace = trace_->trace();
    const std::uint64_t categories = spec.categories;
    strategy_ = layout::makeLayout(
        options.layoutKind, groups, options.ssd.channels,
        [&trace, rows_per_page,
         categories](std::uint64_t group) {
            double hottest = 0.0;
            const std::uint64_t first = group * rows_per_page;
            const std::uint64_t limit = std::min(
                first + rows_per_page, categories);
            for (std::uint64_t row = first; row < limit; ++row)
                hottest =
                    std::max(hottest, trace.hotness(row));
            return hottest;
        });
    // The background re-layout task mutates placement in place; only
    // the learning-adaptive strategy supports that, so the downcast
    // doubles as the feature gate.
    adaptive_ = dynamic_cast<layout::LearningAdaptiveLayout *>(
        strategy_.get());

    accel::AccelConfig accel_config;
    accel_config.fpKind = options.fpKind;
    accel_config.overlapStages = options.overlapStages;
    accel_config.weightPrecision = options.weightPrecision;
    accel_config.degradedPolicy = options.degradedPolicy;
    accel_config.threads = options.threads;
    accel_config.hostIsa = options.isa;
    accel_config.cache = options.cache;
    pipeline_ = std::make_unique<accel::InferencePipeline>(
        spec_, accel_config, *ssd_, *strategy_,
        options.int4Placement);
    pipeline_->setScreeningEnabled(options.screening);

    // Account for the DRAM capacity the accelerator mode claims: the
    // resident INT4 screener plus the hot-row cache.  The screener
    // reservation is clamped — a screener too big for DRAM is refused
    // by deployTimeEstimate(), not here (the DramCapacityGuard
    // contract) — and validate() guaranteed the cache fits whatever
    // the screener leaves.
    if (options.int4Placement == accel::Int4Placement::Dram)
        ssd_->dram().reserve(
            std::min(spec_.int4WeightBytes(),
                     ssd_->dram().availableBytes()));
    if (accel::RowCache *cache = pipeline_->rowCache()) {
        ssd_->dram().reserve(options.cache.capacityBytes);
        // Flash relocations (patrol scrub, wear leveling, GC) may
        // rewrite a cached group's backing block; drop the stale DRAM
        // copy.  The pipeline outlives every FTL call this system
        // makes, so the captured pointer stays valid.
        ssd_->ftl().setRelocationListener(
            [cache](const ssdsim::PhysicalPage &src) {
                cache->invalidatePhysical(src);
            });
    }
}

accel::RunResult
EcssdSystem::runInference(unsigned batches)
{
    return runInferenceWith(*trace_, batches);
}

accel::RunResult
EcssdSystem::runInferenceWith(accel::CandidateSource &source,
                              unsigned batches)
{
    ssd_->resetTimelines();
    if (!options_.screening) {
        accel::AllRowsSource all(spec_.categories);
        return pipeline_->run(all, batches);
    }
    return pipeline_->run(source, batches);
}

sim::Tick
EcssdSystem::relayoutStep(sim::Tick now)
{
    const RelayoutConfig &cfg = options_.relayout;
    const accel::RowCache *cache = pipeline_->rowCache();
    if (!cfg.enabled || adaptive_ == nullptr || cache == nullptr)
        return now;

    ++relayoutStats_.passes;

    // Deterministic snapshot of the decayed observed-frequency
    // counters: hash-map iteration order is unspecified, so sort by
    // group id before anything depends on the order.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> observed(
        cache->observedFrequencies().begin(),
        cache->observedFrequencies().end());
    std::sort(observed.begin(), observed.end());

    const unsigned channels = strategy_->channels();
    std::vector<double> mass(channels, 0.0);
    for (const auto &[group, count] : observed)
        mass[strategy_->channelOf(group)] +=
            static_cast<double>(count);

    const auto balance_of = [&]() {
        double total = 0.0;
        double peak = 0.0;
        for (double m : mass) {
            total += m;
            peak = std::max(peak, m);
        }
        if (peak <= 0.0)
            return 1.0;
        return total / channels / peak;
    };

    double balance = balance_of();
    relayoutStats_.lastDivergence = 1.0 - balance;
    if (relayoutStats_.lastDivergence <= cfg.divergenceThreshold) {
        relayoutStats_.recoveredBalance = balance;
        return now;
    }

    // The observed traffic has drifted from the hot-degree
    // prediction the placement was built on: re-home the hottest
    // groups of the most-loaded channel onto the least-loaded one,
    // page budget permitting.  Candidates hottest-first (frequency
    // descending, group ascending — build()'s tie order).
    ++relayoutStats_.migrationPasses;
    std::vector<std::size_t> order(observed.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&observed](std::size_t a, std::size_t b) {
                  if (observed[a].second != observed[b].second)
                      return observed[a].second > observed[b].second;
                  return observed[a].first < observed[b].first;
              });

    const unsigned pages_per_group = pipeline_->pagesPerGroup();
    ssdsim::Ftl &ftl = ssd_->ftl();
    std::vector<bool> moved(observed.size(), false);
    unsigned budget = cfg.pageBudget;
    sim::Tick busy_until = now;

    while (budget >= pages_per_group) {
        unsigned donor = 0;
        unsigned receiver = 0;
        for (unsigned c = 1; c < channels; ++c) {
            if (mass[c] > mass[donor])
                donor = c;
            if (mass[c] < mass[receiver])
                receiver = c;
        }
        const double gap = mass[donor] - mass[receiver];
        if (gap <= 0.0)
            break;

        // Hottest unmoved donor-resident group whose weight still
        // narrows the gap after the move (weight < gap).
        std::size_t pick = observed.size();
        for (std::size_t idx : order) {
            if (moved[idx])
                continue;
            const auto &[group, count] = observed[idx];
            if (count == 0
                || static_cast<double>(count) >= gap)
                continue;
            if (strategy_->channelOf(group) != donor)
                continue;
            pick = idx;
            break;
        }
        if (pick == observed.size())
            break;

        const auto &[group, count] = observed[pick];
        // Source pages under the *current* placement, then mutate,
        // then destination pages under the new one.  The FTL fires
        // the relocation listener on each source page, so the DRAM
        // row cache drops its now-stale copy.
        std::vector<ssdsim::PhysicalPage> srcs;
        srcs.reserve(pages_per_group);
        for (unsigned p = 0; p < pages_per_group; ++p)
            srcs.push_back(layout::pageOfRow(*strategy_,
                                             options_.ssd, group,
                                             p));
        adaptive_->relocateRow(group, receiver);
        for (unsigned p = 0; p < pages_per_group; ++p) {
            const ssdsim::PhysicalPage dst = layout::pageOfRow(
                *strategy_, options_.ssd, group, p);
            busy_until = ftl.migrateComputedPage(srcs[p], dst,
                                                 busy_until);
        }

        mass[donor] -= static_cast<double>(count);
        mass[receiver] += static_cast<double>(count);
        moved[pick] = true;
        budget -= pages_per_group;
        ++relayoutStats_.rowsMigrated;
        relayoutStats_.pagesMoved += pages_per_group;
    }

    balance = balance_of();
    relayoutStats_.recoveredBalance = balance;

    // IO-budget share: the flash time the pass consumed is spread
    // over 1/fraction of wall-time, like the patrol scrub.
    const sim::Tick flash_busy = busy_until - now;
    return now
        + static_cast<sim::Tick>(
               static_cast<double>(flash_busy)
                   / cfg.ioBudgetFraction
               + 0.5);
}

void
EcssdSystem::publishRelayoutMetrics(
    sim::MetricsRegistry &registry) const
{
    // Gauges only once a pass ran: configs that never call (or never
    // enable) re-layout keep their metrics JSON byte-identical.
    if (relayoutStats_.passes == 0)
        return;
    registry.gaugeSet("relayout.passes",
                      static_cast<double>(relayoutStats_.passes));
    registry.gaugeSet(
        "relayout.migration_passes",
        static_cast<double>(relayoutStats_.migrationPasses));
    registry.gaugeSet(
        "relayout.rows_migrated",
        static_cast<double>(relayoutStats_.rowsMigrated));
    registry.gaugeSet(
        "relayout.pages_moved",
        static_cast<double>(relayoutStats_.pagesMoved));
    registry.gaugeSet("relayout.divergence",
                      relayoutStats_.lastDivergence);
    registry.gaugeSet("relayout.recovered_balance",
                      relayoutStats_.recoveredBalance);
}

void
EcssdSystem::attachObservability(sim::MetricsRegistry *metrics,
                                 sim::SpanTracer *spans)
{
    pipeline_->attachObservability(metrics, spans);
    ssd_->setSpanTracer(spans);
}

void
EcssdSystem::publishMetrics(sim::MetricsRegistry &registry,
                            const accel::RunResult &result) const
{
    ssd_->publishMetrics(registry);
    registry.gaugeSet("run.total_time_ms",
                      sim::tickToMs(result.totalTime));
    registry.gaugeSet("run.mean_batch_ms", result.meanBatchMs());
    registry.gaugeSet("run.channel_utilization",
                      result.channelUtilization);
    registry.gaugeSet("run.effective_gflops",
                      result.effectiveGflops);
    registry.gaugeSet("run.batches",
                      static_cast<double>(result.batches.size()));
    registry.gaugeSet(
        "run.failed_batches",
        static_cast<double>(result.failedBatches));
    // Cache gauges exist only when the cache does, so a disabled
    // run's metrics JSON stays byte-identical to a cache-less build.
    if (const accel::RowCache *cache = pipeline_->rowCache()) {
        cache->publishMetrics(registry);
        registry.gaugeSet("run.cache_hit_rate",
                          result.cacheHitRate());
    }
    // Serving identity, only once a versioned layer stamped it —
    // unversioned runs keep their metrics JSON byte-identical.
    if (weightVersion_ != 0) {
        registry.gaugeSet("run.deploy_epoch",
                          static_cast<double>(deployEpoch_));
        registry.gaugeSet("run.weight_version",
                          static_cast<double>(weightVersion_));
    }
}

circuit::EnergyBreakdown
EcssdSystem::estimateRunEnergy(const accel::RunResult &result) const
{
    circuit::EnergyActivity activity;
    for (const accel::BatchTiming &batch : result.batches) {
        activity.flashPagesRead +=
            batch.fp32PagesRead + batch.int4PagesRead;
        activity.int4Ops += batch.int4Ops;
        activity.fp32Flops += batch.fp32Flops;
    }
    activity.dramBytes = ssd_->dram().bytesMoved();
    activity.hostBytes = ssd_->stats().hostBytesRaw;
    activity.elapsed = result.totalTime;

    circuit::AcceleratorConfig accel_config;
    accel_config.fpKind = options_.fpKind;
    circuit::EnergyParams params;
    params.pageBytes = options_.ssd.pageBytes;
    return circuit::estimateEnergy(
        activity, circuit::estimateAccelerator(accel_config),
        params);
}

sim::Tick
EcssdSystem::deployTimeEstimate() const
{
    return estimateDeployTime(spec_, options_.ssd);
}

sim::Tick
estimateDeployTime(const xclass::BenchmarkSpec &spec,
                   const ssdsim::SsdConfig &config)
{
    // 4-bit matrix: host link then DRAM write, pipelined; the slower
    // of the two links bounds the stream.
    const std::uint64_t int4_bytes = spec.int4WeightBytes();
    ECSSD_ASSERT(int4_bytes <= config.dramBytes,
                 "INT4 screener does not fit the SSD DRAM; "
                 "scale out (Section 7.1)");
    const double int4_gbps =
        std::min(config.hostLinkGbps, config.dramBandwidthGbps);
    const sim::Tick int4_time =
        sim::transferTime(int4_bytes, int4_gbps);

    // 32-bit matrix: programs stripe over every channel and die, so
    // the throughput per channel is pageBytes / max(bus, tPROG/dies).
    const std::uint64_t fp32_bytes = spec.fp32WeightBytes();
    const sim::Tick per_page_bus = config.pageTransferTime();
    const sim::Tick per_page_prog = sim::microseconds(
        config.programLatencyUs / config.diesPerChannel);
    const sim::Tick per_page = std::max(per_page_bus, per_page_prog);
    const std::uint64_t pages_per_channel =
        (fp32_bytes / config.pageBytes + config.channels - 1)
        / config.channels;
    const sim::Tick flash_time = pages_per_channel * per_page;
    const sim::Tick link_time =
        sim::transferTime(fp32_bytes, config.hostLinkGbps);

    return int4_time + std::max(flash_time, link_time);
}

} // namespace ecssd
