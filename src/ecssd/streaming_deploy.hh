/**
 * @file
 * Out-of-core streaming weight deploy (the bounded-host-memory twin
 * of EcssdApi::weightDeploy's layout build).
 *
 * The host-resident deploy path needs the whole hotness vector in
 * memory before LearningAdaptiveLayout::build() can sort it — O(rows)
 * doubles plus the sort's index array.  At extreme-classification
 * scale (10^7..10^8 rows) that dominates deploy-host memory, so this
 * pipeline restructures the same computation as a stream:
 *
 *   rows -> quantize -> hot-degree score -> run formation (sorted
 *   runs sized to the host budget, spilled through the simulated
 *   flash) -> k-way tournament merge -> SortedStreamLayoutBuilder
 *
 * Every transient host allocation charges a sim::MemoryBudget, so the
 * configured ceiling (EcssdOptions::deployHostBudgetBytes) is
 * *enforced* — an overdraft dies with E_DEPLOY_BUDGET — and the
 * budget's high-water mark is reported as the deploy's peak host
 * bytes.  The produced placement is bit-for-bit identical to the
 * host-resident build() because the merge replays rows in exactly
 * build()'s sort order (see SortedStreamLayoutBuilder).
 *
 * Timing model: the source streams over the host link while runs
 * form; spill writes and merge reads are timed through the device's
 * FTL (top-of-logical-space staging pages, trimmed afterwards, the
 * staged-redeploy idiom); and the final channel programs overlap the
 * merge of the next run, so deploy wall-time tracks program bandwidth
 * rather than sort time.
 *
 * Simulator note: the spilled run records are bytes *on flash* in
 * the modeled system.  The simulator's flash array is a timing model
 * without a data plane, so the record payloads live in a host-side
 * stand-in store that is deliberately NOT budget-charged — exactly
 * like deployed weights, which stay host-side by reference while
 * modeled as flash-resident.
 */

#ifndef ECSSD_ECSSD_STREAMING_DEPLOY_HH
#define ECSSD_ECSSD_STREAMING_DEPLOY_HH

#include <cstdint>
#include <memory>
#include <span>

#include "layout/strategy.hh"
#include "numeric/matrix.hh"
#include "sim/types.hh"
#include "ssdsim/config.hh"
#include "ssdsim/ssd.hh"

namespace ecssd
{

/**
 * A weight matrix exposed one row at a time: the streaming deploy
 * never asks for more than one row of it, so implementations can
 * generate rows procedurally (synthetic benchmarks at scales no host
 * buffer could hold) or adapt an in-memory matrix.
 */
class WeightRowSource
{
  public:
    virtual ~WeightRowSource() = default;

    virtual std::uint64_t rows() const = 0;
    virtual std::size_t cols() const = 0;

    /** Materialize row @p row into @p out (exactly cols() floats). */
    virtual void materialize(std::uint64_t row,
                             std::span<float> out) const = 0;
};

/** Adapter over a host-resident FloatMatrix. */
class MatrixRowSource : public WeightRowSource
{
  public:
    /** @param matrix Kept by reference; must outlive the source. */
    explicit MatrixRowSource(const numeric::FloatMatrix &matrix)
        : matrix_(matrix)
    {
    }

    std::uint64_t rows() const override { return matrix_.rows(); }
    std::size_t cols() const override { return matrix_.cols(); }
    void materialize(std::uint64_t row,
                     std::span<float> out) const override;

  private:
    const numeric::FloatMatrix &matrix_;
};

/**
 * Procedurally generated rows (seeded, deterministic): the >=10M-row
 * boundedness tests' source.  Row values are uniform in [-1, 1) from
 * a per-row generator, so any row can be materialized independently
 * with O(1) state.
 */
class SyntheticRowSource : public WeightRowSource
{
  public:
    SyntheticRowSource(std::uint64_t rows, std::size_t cols,
                       std::uint64_t seed)
        : rows_(rows), cols_(cols), seed_(seed)
    {
    }

    std::uint64_t rows() const override { return rows_; }
    std::size_t cols() const override { return cols_; }
    void materialize(std::uint64_t row,
                     std::span<float> out) const override;

  private:
    std::uint64_t rows_;
    std::size_t cols_;
    std::uint64_t seed_;
};

/** Knobs of one streaming deploy. */
struct StreamingDeployConfig
{
    /**
     * Hard ceiling on transient host bytes (the accounting
     * allocator's limit).  0 = unlimited: the pipeline degenerates
     * to a single in-memory run (no spill) but still reports its
     * high-water mark.
     */
    std::uint64_t hostBudgetBytes = 0;

    /** Stored bytes of one deployed weight row (FP32: 4 * hidden
     *  dim; CFP16 halves it).  Prices the final channel programs. */
    std::uint64_t rowBytes = 0;

    /** Projection seed (must match the screener's for placement
     *  equivalence with the host-resident path). */
    std::uint64_t seed = 1;

    /** Optional pre-trained K x D projection (kept by reference). */
    const numeric::FloatMatrix *trainedProjection = nullptr;
};

/** Outcome of one streaming deploy. */
struct StreamingDeployResult
{
    /** The placement, bit-identical to build() on the same rows. */
    std::unique_ptr<layout::LearningAdaptiveLayout> layout;
    /** Simulated deploy wall-time. */
    sim::Tick deployTime = 0;
    /** Accounting allocator's high-water mark. */
    std::uint64_t hostPeakBytes = 0;
    /** The enforced ceiling (0 = unlimited). */
    std::uint64_t hostBudgetBytes = 0;
    /** Sorted runs spilled through the flash (0 = single-run). */
    std::uint64_t runsSpilled = 0;
    /** Staging pages written for run spills. */
    std::uint64_t spillPagesWritten = 0;
    /** Staging pages read back by the merge. */
    std::uint64_t spillPagesRead = 0;
    std::uint64_t rowsPlaced = 0;
};

/**
 * Run the streaming deploy pipeline over @p source.
 *
 * @param source Weight rows, one at a time.
 * @param shrunk_dim Screener projection width K.
 * @param channels Flash channels to place across.
 * @param ssd_config Device geometry/timing for the spill IO and the
 *        program-bandwidth model.
 * @param config Budget and projection knobs.
 * @param device Optional live device whose FTL times the spill IO
 *        (its staging pages are trimmed afterwards); nullptr builds
 *        a private device from @p ssd_config.
 */
StreamingDeployResult streamingWeightDeploy(
    const WeightRowSource &source, std::size_t shrunk_dim,
    unsigned channels, const ssdsim::SsdConfig &ssd_config,
    const StreamingDeployConfig &config,
    ssdsim::SsdDevice *device = nullptr);

} // namespace ecssd

#endif // ECSSD_ECSSD_STREAMING_DEPLOY_HH
