#include "streaming_deploy.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "numeric/int4.hh"
#include "numeric/kernels.hh"
#include "numeric/projection.hh"
#include "sim/budget.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{

void
MatrixRowSource::materialize(std::uint64_t row,
                             std::span<float> out) const
{
    const std::span<const float> src = matrix_.row(row);
    ECSSD_ASSERT(out.size() == src.size(),
                 "row buffer/matrix width mismatch");
    std::copy(src.begin(), src.end(), out.begin());
}

void
SyntheticRowSource::materialize(std::uint64_t row,
                                std::span<float> out) const
{
    ECSSD_ASSERT(out.size() == cols_,
                 "row buffer/source width mismatch");
    // One splitmix64-expanded generator per row: any row is
    // materializable independently, which is what lets the pipeline
    // stream 10^7+ rows without a backing matrix.
    sim::Rng rng(seed_ ^ (row * 0x9e3779b97f4a7c15ULL + 0x6a5d));
    for (std::size_t c = 0; c < cols_; ++c)
        out[c] = static_cast<float>(rng.uniform(-1.0, 1.0));
}

namespace
{

/** One (hot-degree, row) record of a sorted run. */
struct RunRecord
{
    double mass;
    std::uint64_t row;
};

/** build()'s sort key: hotness descending, row ascending. */
inline bool
hotter(const RunRecord &a, const RunRecord &b)
{
    if (a.mass != b.mass)
        return a.mass > b.mass;
    return a.row < b.row;
}

/** Tournament entry: a run's current head. */
struct HeapEntry
{
    double mass;
    std::uint64_t row;
    std::uint32_t run;
};

/** priority_queue "less": the hottest entry pops first. */
struct HeapLess
{
    bool
    operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        if (a.mass != b.mass)
            return a.mass < b.mass;
        return a.row > b.row;
    }
};

/** |q| sum over a packed nibble row — Int4Matrix::rowAbsSum's exact
 *  arithmetic, applied to a scratch row. */
std::int64_t
packedAbsSum(std::span<const std::uint8_t> packed, std::size_t cols)
{
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols; ++c) {
        const std::uint8_t byte = packed[c / 2];
        const std::uint8_t nibble =
            (c % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        const int value = (nibble & 0x8)
            ? static_cast<int>(nibble) - 16
            : static_cast<int>(nibble);
        acc += std::abs(value);
    }
    return acc;
}

constexpr std::uint64_t kRecordBytes = sizeof(RunRecord);
constexpr std::uint64_t kMinRunRecords = 1024;

} // namespace

StreamingDeployResult
streamingWeightDeploy(const WeightRowSource &source,
                      std::size_t shrunk_dim, unsigned channels,
                      const ssdsim::SsdConfig &ssd_config,
                      const StreamingDeployConfig &config,
                      ssdsim::SsdDevice *device)
{
    const std::uint64_t rows = source.rows();
    const std::size_t cols = source.cols();
    ECSSD_ASSERT(rows > 0 && cols > 0, "empty weight source");
    ECSSD_ASSERT(shrunk_dim > 0, "empty projection");

    sim::MemoryBudget budget(config.hostBudgetBytes);

    // The projection basis is deploy-transient host state: K x D
    // twice (the basis and its transpose for the SIMD GEMV).
    const std::uint64_t projector_bytes =
        2ULL * shrunk_dim * cols * sizeof(float);
    sim::BudgetCharge projector_charge(budget, projector_bytes);
    const numeric::Projector projector =
        config.trainedProjection
        ? numeric::Projector(*config.trainedProjection)
        : numeric::Projector(cols, shrunk_dim, config.seed);

    // Per-row scratch: the materialized row, its projection, and the
    // packed INT4 image the hot-degree score reads.
    const std::size_t packed_bytes = (shrunk_dim + 1) / 2;
    sim::BudgetCharge scratch_charge(
        budget, cols * sizeof(float) + shrunk_dim * sizeof(float)
                    + packed_bytes);
    std::vector<float> row_scratch(cols);
    std::vector<float> projected;
    projected.reserve(shrunk_dim);
    std::vector<std::uint8_t> packed(packed_bytes);

    // The layout product (3 bytes per row) plus the builder's
    // O(channels) greedy state.  This is the floor any budget must
    // clear: the placement itself is host-resident by design.
    sim::BudgetCharge builder_charge(
        budget, 3ULL * rows + channels * 24ULL);
    layout::SortedStreamLayoutBuilder builder(rows, channels);

    // Run capacity: half of whatever the budget still allows, so the
    // merge read-ahead and heap fit in the rest.  Unlimited budgets
    // degenerate to one in-memory run (no spill) — the host-resident
    // path's behaviour, still fully accounted.
    std::uint64_t run_capacity = rows;
    if (budget.limit() != 0) {
        const std::uint64_t avail =
            budget.limit() > budget.used()
            ? budget.limit() - budget.used()
            : 0;
        run_capacity = std::max(kMinRunRecords,
                                (avail / 2) / kRecordBytes);
        run_capacity = std::min(run_capacity, rows);
    }
    sim::BudgetCharge run_charge(budget,
                                 run_capacity * kRecordBytes);

    // Private device when the caller has none: the spill IO still
    // runs through a real FTL so GC/wear of the staging window are
    // modeled, not assumed.
    std::unique_ptr<sim::EventQueue> local_queue;
    std::unique_ptr<ssdsim::SsdDevice> local_device;
    if (device == nullptr) {
        local_queue = std::make_unique<sim::EventQueue>();
        local_device = std::make_unique<ssdsim::SsdDevice>(
            ssd_config, *local_queue);
        device = local_device.get();
    }
    ssdsim::Ftl &ftl = device->ftl();

    // Staging window at the top of the logical space (the staged
    // redeploy's probe-page idiom).  Spill pages rotate through the
    // window; a rotation overwrite is exactly how a bounded staging
    // area behaves, and the FTL prices the resulting GC.  Record
    // payloads live in the host-side stand-in store (see header).
    const std::uint64_t window = std::max<std::uint64_t>(
        1,
        std::min<std::uint64_t>(1024, ftl.logicalPages() / 8));
    const auto spill_lpa = [&](std::uint64_t page_idx) {
        return ftl.logicalPages() - 1 - (page_idx % window);
    };
    const std::uint64_t page_bytes = ssd_config.pageBytes;
    const std::uint64_t records_per_page =
        std::max<std::uint64_t>(1, page_bytes / kRecordBytes);

    StreamingDeployResult result;
    result.hostBudgetBytes = config.hostBudgetBytes;
    result.rowsPlaced = rows;

    std::vector<std::vector<RunRecord>> run_store;
    std::vector<std::uint64_t> run_first_page;
    std::vector<RunRecord> run;
    run.reserve(run_capacity);

    sim::Tick spill_t = 0;
    const numeric::IsaLevel isa = numeric::activeIsa();

    const auto spill_run = [&]() {
        std::sort(run.begin(), run.end(), hotter);
        const std::uint64_t pages =
            (run.size() * kRecordBytes + page_bytes - 1)
            / page_bytes;
        run_first_page.push_back(result.spillPagesWritten);
        for (std::uint64_t p = 0; p < pages; ++p)
            spill_t = ftl.write(
                spill_lpa(result.spillPagesWritten + p), spill_t);
        result.spillPagesWritten += pages;
        ++result.runsSpilled;
        run_store.push_back(std::move(run));
        run = std::vector<RunRecord>();
        run.reserve(run_capacity);
    };

    // --- Run formation: quantize + score, spill full runs ---------
    for (std::uint64_t r = 0; r < rows; ++r) {
        source.materialize(r, row_scratch);
        projector.projectInto(row_scratch, projected);
        // Exactly Int4Matrix's per-row quantization, so the mass is
        // bit-identical to Screener::rowAbsMasses()[r].
        const float scale =
            numeric::maxAbsSpan(projected, isa)
            / static_cast<float>(numeric::int4Max);
        numeric::quantizePackSpan(projected, scale, packed.data(),
                                  isa);
        const double mass = static_cast<double>(packedAbsSum(
                                packed, shrunk_dim))
            * scale;
        run.push_back({mass, r});
        if (run.size() >= run_capacity && r + 1 < rows)
            spill_run();
    }

    sim::Tick merge_t = 0;
    if (run_store.empty()) {
        // Single run: everything fit the budget's run buffer — sort
        // in place and feed the builder directly, no spill IO.
        std::sort(run.begin(), run.end(), hotter);
        for (const RunRecord &record : run)
            builder.append(record.row, record.mass);
        run_charge.resize(0);
    } else {
        // The final (partial) run spills too: the merge reads every
        // run from the device, uniformly.
        if (!run.empty())
            spill_run();
        run_charge.resize(0);

        // --- K-way tournament merge over the spilled runs --------
        const std::size_t k = run_store.size();
        // Read-ahead accounting: one staging page of records per
        // run, plus the tournament heap.
        sim::BudgetCharge merge_charge(
            budget,
            k * (records_per_page * kRecordBytes
                 + sizeof(HeapEntry) + 3 * sizeof(std::uint64_t)));

        std::vector<std::uint64_t> cursor(k, 0);
        std::vector<std::uint64_t> block_left(k, 0);
        std::vector<std::uint64_t> pages_read(k, 0);
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            HeapLess>
            heap;

        const auto refill = [&](std::uint32_t i) {
            // Crossing into a new staging page costs a timed read.
            if (block_left[i] == 0) {
                merge_t = ftl.read(
                    spill_lpa(run_first_page[i] + pages_read[i]),
                    merge_t);
                ++pages_read[i];
                ++result.spillPagesRead;
                block_left[i] = records_per_page;
            }
            const RunRecord &record = run_store[i][cursor[i]];
            heap.push({record.mass, record.row,
                       static_cast<std::uint32_t>(i)});
            ++cursor[i];
            --block_left[i];
        };

        for (std::uint32_t i = 0; i < k; ++i)
            refill(i);
        while (!heap.empty()) {
            const HeapEntry top = heap.top();
            heap.pop();
            builder.append(top.row, top.mass);
            if (cursor[top.run] < run_store[top.run].size())
                refill(top.run);
        }
    }

    // Release the staging window back to the logical space.
    const std::uint64_t staged_lpas =
        std::min<std::uint64_t>(window, result.spillPagesWritten);
    for (std::uint64_t i = 0; i < staged_lpas; ++i)
        ftl.trim(ftl.logicalPages() - 1 - i);

    result.layout = builder.finish();

    // --- Deploy wall-time ----------------------------------------
    // INT4 screener stream into DRAM, then the streamed FP32 deploy:
    // the host link feeds run formation while spills write; the
    // channel programs overlap the merge of the next run, so the
    // device-side critical path is spill + max(merge, program).
    const std::uint64_t int4_bytes = rows * packed_bytes;
    const sim::Tick int4_time = sim::transferTime(
        int4_bytes, std::min(ssd_config.hostLinkGbps,
                             ssd_config.dramBandwidthGbps));
    const sim::Tick link_time = sim::transferTime(
        rows * cols * sizeof(float), ssd_config.hostLinkGbps);
    const std::uint64_t row_bytes =
        config.rowBytes != 0 ? config.rowBytes : cols * 4ULL;
    const sim::Tick per_page =
        std::max(ssd_config.pageTransferTime(),
                 sim::microseconds(ssd_config.programLatencyUs
                                   / ssd_config.diesPerChannel));
    const std::uint64_t pages_per_channel =
        (rows * row_bytes / page_bytes + channels - 1) / channels;
    const sim::Tick program_time = pages_per_channel * per_page;
    result.deployTime = int4_time
        + std::max(link_time,
                   spill_t + std::max(merge_t, program_time));

    result.hostPeakBytes = budget.highWater();
    return result;
}

} // namespace ecssd
