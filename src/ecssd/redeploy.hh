/**
 * @file
 * Zero-downtime weight hot-swap: the staged online-redeploy state
 * machine shared by every serving layer (EcssdApi, InferenceServer,
 * the scale-out fleet).
 *
 * A redeploy serves traffic *through* the swap instead of around it:
 *
 *   Idle -> Staging -> Warming -> Validating -> Flipping -> Draining
 *        -> Committed | RolledBack
 *
 *  - Staging: the new version's INT4 screener + FP32/CFP16 rows
 *    program into spare flash capacity and leftover DRAM under an
 *    explicit IO budget (staging yields to foreground reads, like
 *    the patrol scrub).
 *  - Warming: the staged screener and row cache replay a recorded
 *    sample of recent queries so the flip lands on a warm version.
 *  - Validating: a shadow-scoring pass compares the staged
 *    screener's candidates against the live version on the same
 *    queries; recall below the configured floor rolls back.
 *  - Flipping: the deploy epoch advances atomically — new sessions
 *    bind to the new version, in-flight sessions keep the old one.
 *  - Draining: old-epoch sessions finish on the old version under a
 *    bounded drain deadline; its capacity is reclaimed only after
 *    the drain completes.
 *
 * Any failure (validation below threshold, uncorrectable reads on
 * staged pages, the end-of-life read-only latch, DRAM pressure, a
 * drain timeout under the strict policy) rolls back to the old
 * version with zero failed requests: the machine's owner keeps the
 * old version serving until Committed.
 */

#ifndef ECSSD_ECSSD_REDEPLOY_HH
#define ECSSD_ECSSD_REDEPLOY_HH

#include <cstdint>
#include <vector>

#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "sim/types.hh"
#include "ssdsim/ftl.hh"

namespace ecssd
{

/** Phase of one staged online redeploy. */
enum class RedeployPhase
{
    Idle,
    /** Budgeted programs of the new version into spare capacity. */
    Staging,
    /** Replaying recorded queries through the staged version. */
    Warming,
    /** Shadow-scoring the staged screener against the live one. */
    Validating,
    /** The atomic epoch flip (instantaneous; never observed from
     *  outside a transition). */
    Flipping,
    /** Old-epoch sessions finishing on the old version. */
    Draining,
    /** Terminal: the new version serves, old capacity reclaimed. */
    Committed,
    /** Terminal: the old version serves, staged capacity released. */
    RolledBack,
};

/** Why a redeploy rolled back. */
enum class RollbackReason
{
    None,
    /** redeployAbort() before the flip. */
    Aborted,
    /** Shadow-scoring recall fell below the configured floor. */
    ValidationRecall,
    /** A staged page verify-read came back uncorrectable. */
    StagedMediaFault,
    /** The device latched read-only (end of life) mid-staging. */
    DeviceReadOnly,
    /** The new version does not fit the DRAM left after current
     *  residency. */
    DramPressure,
    /** Drain deadline expired under the strict rollback policy. */
    DrainTimeout,
    /** The shard being swapped died mid-redeploy (fleet swaps). */
    ShardLoss,
};

const char *toString(RedeployPhase phase);
const char *toString(RollbackReason reason);

/** Policy knobs of one staged redeploy. */
struct RedeployConfig
{
    /**
     * Fraction of the deploy-path bandwidth the staging programs may
     * take; the rest stays with foreground reads.  Staging a version
     * that takes T to deploy stop-the-world takes T / fraction here.
     */
    double ioBudgetFraction = 0.25;
    /** Bytes staged per advance step (the budget granule). */
    std::uint64_t stepBytes = 8ULL << 20;
    /** Recorded recent queries replayed to warm the staged version. */
    unsigned warmupQueries = 4;
    /** Recorded recent queries shadow-scored for validation. */
    unsigned validationQueries = 4;
    /** Minimum staged-vs-live screener recall; below it: rollback. */
    double minValidationRecall = 0.9;
    /** Drain budget after the flip, in service-clock ticks. */
    sim::Tick drainDeadline = sim::milliseconds(50.0);
    /** Service-clock ticks one Draining advance step models (the
     *  background reclaim daemon's poll interval). */
    sim::Tick drainPollInterval = sim::microseconds(100.0);
    /**
     * Deadline-expiry policy.  False (default): the swap commits and
     * remaining old-epoch sessions are force-retired (StaleSession
     * from then on).  True: the swap rolls back instead, restoring
     * the old epoch so those sessions keep serving.
     */
    bool drainTimeoutRollsBack = false;
    /** Staged pages actually programmed + verify-read through the
     *  FTL (the rest of the footprint is accounted analytically).
     *  The probe reads surface real media faults on staged pages. */
    unsigned stagingProbePages = 16;

    /** Die fatally (sim::FatalError) on a nonsensical config. */
    void validate() const;
};

/** Point-in-time snapshot of one redeploy, for operators/tests. */
struct RedeployStatus
{
    RedeployPhase phase = RedeployPhase::Idle;
    RollbackReason reason = RollbackReason::None;
    /** Bytes staged so far / total footprint of the new version. */
    std::uint64_t stagedBytes = 0;
    std::uint64_t totalBytes = 0;
    /** Mean staged-vs-live screener recall of the validation pass. */
    double validationRecall = 1.0;
    /** Epochs on either side of the flip. */
    std::uint64_t oldEpoch = 0;
    std::uint64_t newEpoch = 0;
    /** Monotone id of the weight version being (or last) deployed. */
    std::uint64_t weightVersion = 0;
    /** Old-epoch sessions still open (Draining only). */
    std::uint64_t inFlightOldSessions = 0;
    /** Background ticks consumed by the budgeted staging so far. */
    sim::Tick stagingTime = 0;
    /** Service-clock ticks since the flip (Draining and later). */
    sim::Tick drainElapsed = 0;
};

/**
 * The redeploy phase machine: legal-transition bookkeeping plus
 * observability (redeploy.* counters and per-phase spans).  Owners
 * (EcssdApi, InferenceServer, ScaleOutEcssd) drive the transitions
 * and supply the clock; the machine guarantees that every begun
 * redeploy terminates in exactly one of Committed / RolledBack.
 */
class RedeployMachine
{
  public:
    RedeployMachine() = default;

    RedeployPhase phase() const { return phase_; }
    RollbackReason reason() const { return reason_; }

    /** True from begin() until a terminal phase. */
    bool
    active() const
    {
        return phase_ != RedeployPhase::Idle && !terminal();
    }

    bool
    terminal() const
    {
        return phase_ == RedeployPhase::Committed
            || phase_ == RedeployPhase::RolledBack;
    }

    /** True before the flip (abort is still possible). */
    bool
    preFlip() const
    {
        return phase_ == RedeployPhase::Staging
            || phase_ == RedeployPhase::Warming
            || phase_ == RedeployPhase::Validating;
    }

    /** Idle (or terminal, restarting) -> Staging at tick @p now. */
    void begin(sim::Tick now);

    /**
     * Advance to @p next at tick @p now.  Only the forward edges of
     * the phase diagram are legal (Staging->Warming->Validating->
     * Flipping->Draining->Committed); anything else dies fatally —
     * a wedged or skipping owner is a bug, not a state.
     */
    void advanceTo(RedeployPhase next, sim::Tick now);

    /** Any active phase -> RolledBack with @p reason at @p now. */
    void rollback(RollbackReason reason, sim::Tick now);

    /** Attach (or detach, with nullptr) observability sinks: the
     *  registry sees redeploy.commits / redeploy.rollbacks counters
     *  and the redeploy.phase gauge; the tracer sees one
     *  "redeploy.<phase>" span per non-terminal phase. */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /** Completed redeploys through this machine. */
    std::uint64_t commits() const { return commits_; }
    std::uint64_t rollbacks() const { return rollbacks_; }

  private:
    void enterPhase(RedeployPhase next, sim::Tick now);

    RedeployPhase phase_ = RedeployPhase::Idle;
    RollbackReason reason_ = RollbackReason::None;
    sim::Tick phaseEnteredAt_ = 0;
    sim::SpanId openSpan_ = 0;
    bool spanOpen_ = false;
    std::uint64_t commits_ = 0;
    std::uint64_t rollbacks_ = 0;
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
};

/**
 * Budgeted-staging ledger: tracks how many bytes of the new version
 * have programmed and how much background time the IO budget has
 * consumed.  Shared by every redeploy driver so the budget math is
 * identical across the API, the server, and the fleet.
 */
class StagingLedger
{
  public:
    /**
     * @param total_bytes Footprint of the new version (INT4 + FP32).
     * @param full_bandwidth_time Stop-the-world deploy time of that
     *        footprint (the analytic estimate).
     * @param io_budget_fraction Bandwidth share granted to staging.
     * @param step_bytes Bytes staged per step.
     */
    void reset(std::uint64_t total_bytes,
               sim::Tick full_bandwidth_time,
               double io_budget_fraction, std::uint64_t step_bytes);

    bool done() const { return stagedBytes_ >= totalBytes_; }
    std::uint64_t stagedBytes() const { return stagedBytes_; }
    std::uint64_t totalBytes() const { return totalBytes_; }
    /** Background ticks consumed so far. */
    sim::Tick elapsed() const { return elapsed_; }

    /** Stage one budget step; returns the ticks it consumed. */
    sim::Tick step();

  private:
    std::uint64_t totalBytes_ = 0;
    std::uint64_t stagedBytes_ = 0;
    std::uint64_t stepBytes_ = 0;
    sim::Tick fullTime_ = 0;
    double budget_ = 1.0;
    sim::Tick elapsed_ = 0;
};

/**
 * Program + verify-read one batch of staged probe pages through
 * @p ftl.  The probes exercise the real flash path so staging
 * surfaces the same faults foreground traffic would: an
 * uncorrectable verify-read or a read-only rejection aborts the
 * staging with the corresponding rollback reason.
 *
 * @param ftl The live device's FTL.
 * @param pages The staging area's logical pages (probe targets).
 * @param cursor Resume position into @p pages (advanced).
 * @param budget Probes to run this step.
 * @param now Issue tick (the service clock).
 * @param[out] reason Set on failure (StagedMediaFault /
 *        DeviceReadOnly); untouched on success.
 * @return False when staging must roll back.
 */
bool stageProbePages(ssdsim::Ftl &ftl,
                     const std::vector<ssdsim::LogicalPage> &pages,
                     unsigned &cursor, unsigned budget, sim::Tick now,
                     RollbackReason &reason);

} // namespace ecssd

#endif // ECSSD_ECSSD_REDEPLOY_HH
