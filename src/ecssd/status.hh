/**
 * @file
 * The one ECSSD status vocabulary.
 *
 * Every layer reports outcomes through this enum: the session API
 * (api.hh), the serving layer (server.hh's Response), the staged
 * redeploy guards, and the multi-tenant registry.  Historically the
 * API and the server each kept their own enum and callers translated
 * between them; the values of both now live here, with one toString.
 */

#ifndef ECSSD_ECSSD_STATUS_HH
#define ECSSD_ECSSD_STATUS_HH

namespace ecssd
{

/** Outcome of an API call or the terminal state of a request. */
enum class Status
{
    Ok,
    /** Served, but some candidate rows carry screener scores
     *  (uncorrectable FP32 pages). */
    Degraded,
    /** Deadline missed: either dropped unserved (empty prediction)
     *  or completed late. */
    TimedOut,
    /** Rejected at admission (bounded queue, delay target, brownout
     *  shed, or eviction). */
    Shed,
    /** The device is not in accelerator mode (call ecssdEnable()). */
    WrongMode,
    /** No weights deployed (call weightDeploy()). */
    NotDeployed,
    /** The call needs an input this session has not received. */
    MissingInput,
    /** classify() before a screen() produced candidates. */
    NotScreened,
    /** results() before a successful classify(). */
    NotClassified,
    /** The feature length does not match the deployed layer. */
    DimensionMismatch,
    /** The session's weight version is gone: it predates the current
     *  deployment, or its drain window closed after an epoch flip. */
    StaleSession,
    /** A staged redeploy is already in flight (one at a time). */
    RedeployActive,
    /** The redeploy call has no active redeploy to act on. */
    NoRedeploy,
    /** The TenantHandle names no admitted tenant. */
    UnknownTenant,
    /** The tenant's DRAM partition or byte quota cannot hold the
     *  request (admission, screener residency, or cache carve). */
    TenantQuotaExceeded,
};

/** Human-readable status name. */
const char *toString(Status status);

} // namespace ecssd

#endif // ECSSD_ECSSD_STATUS_HH
