/**
 * @file
 * Multi-tenant model identity and SSD-DRAM partition accounting.
 *
 * A production fleet serves several extreme-classification models
 * from one device.  Each model is a *tenant*: it owns a DRAM
 * partition (its INT4 screener residency plus a hot-row cache byte
 * quota carved out of it), its own deploy epoch and redeploy state
 * machine, a metric/span namespace ("tenant.<name>."), and an SLO
 * record (deadline, p99 target, Gold share) the admission/brownout
 * stack enforces per tenant.
 *
 * The TenantRegistry is pure accounting, in the spirit of
 * DramModel::reserve(): it decides who may claim how much of the
 * device DRAM, while the partitions themselves are enforced
 * mechanically — every tenant's systems are built against a DRAM
 * budget equal to its partition, and its row cache is sized to its
 * byte quota, so one tenant can never evict another tenant's rows
 * past that tenant's quota by construction.
 */

#ifndef ECSSD_ECSSD_TENANT_HH
#define ECSSD_ECSSD_TENANT_HH

#include <cstdint>
#include <map>
#include <string>

#include "ecssd/status.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"

namespace ecssd
{

/** Dense tenant identifier (0 is the implicit default tenant). */
using TenantId = std::uint32_t;

/** One tenant's partition, quota, and SLO declaration. */
struct TenantConfig
{
    /** Namespace-safe tenant name ([a-z0-9_-]); surfaces in every
     *  metric/span as "tenant.<name>.*". */
    std::string name;
    /**
     * The tenant's SSD-DRAM partition: its INT4 screener residency
     * plus its row-cache quota must fit inside it.  Partitions of
     * all admitted tenants must sum to at most the device DRAM.
     */
    std::uint64_t dramBytes = 0;
    /** Row-cache byte quota carved out of the partition (0 = no
     *  cache for this tenant). */
    std::uint64_t cacheQuotaBytes = 0;

    // --- SLO ------------------------------------------------------
    /** Per-request completion deadline (0 = none). */
    sim::Tick requestDeadline = 0;
    /** Serving p99 target in milliseconds; drives the tenant's
     *  admission target and brownout thresholds (0 = no target). */
    double p99TargetMs = 0.0;
    /** Expected Gold share of the tenant's traffic, in [0, 1]
     *  (accounting only — the traffic engine decides classes). */
    double goldShare = 0.0;

    /** Die fatally (sim::FatalError) on an inconsistent config. */
    void validate() const;

    /** The tenant's metric/span namespace: "tenant.<name>.". */
    std::string metricNamespace() const;
};

/**
 * An opaque reference to an admitted tenant.  Handles are plain
 * values: copying is free, and a handle that names no admitted
 * tenant (stale, foreign, or forged) makes every call report
 * Status::UnknownTenant instead of dying.
 */
class TenantHandle
{
  public:
    /** The invalid handle (never admitted). */
    TenantHandle() = default;

    explicit TenantHandle(TenantId id) : id_(id), valid_(true) {}

    TenantId id() const { return id_; }
    bool valid() const { return valid_; }

  private:
    TenantId id_ = 0;
    bool valid_ = false;
};

/**
 * Admission and DRAM-partition ledger for the tenants of one device.
 *
 * Admission checks the partition sum against the device DRAM budget;
 * per-deploy screener residency charges check against the tenant's
 * own partition.  All methods report through Status — an
 * over-subscribed admission is a caller error, not a fatal one.
 */
class TenantRegistry
{
  public:
    /** Per-tenant ledger entry. */
    struct Entry
    {
        TenantConfig config;
        /** INT4 screener bytes of the tenant's current deployment. */
        std::uint64_t screenerBytes = 0;
        /** Lifetime weight deployments (stop-the-world or flips). */
        std::uint64_t deploys = 0;
    };

    /**
     * @param dram_budget_bytes Device DRAM the partitions share.
     * @param reserved_bytes Bytes spoken for outside the registry
     *        (the default tenant's un-partitioned residency).
     */
    explicit TenantRegistry(std::uint64_t dram_budget_bytes,
                            std::uint64_t reserved_bytes = 0)
        : dramBudgetBytes_(dram_budget_bytes),
          reservedBytes_(reserved_bytes)
    {
    }

    /**
     * Admit one tenant.  Validates @p config, rejects duplicate
     * names, and checks the partition sum:
     * TenantQuotaExceeded when the partitions would over-subscribe
     * the device DRAM.
     *
     * @param[out] handle The admitted tenant, valid only on Ok.
     */
    Status admit(const TenantConfig &config, TenantHandle &handle);

    /** True when @p handle names an admitted tenant. */
    bool known(TenantHandle handle) const;

    /** The admitted tenant's entry; nullptr for unknown handles. */
    const Entry *entry(TenantHandle handle) const;

    /**
     * Charge a deployment's INT4 screener residency against the
     * tenant's partition.  The tenant's screener plus its cache
     * quota must fit its dramBytes: TenantQuotaExceeded otherwise
     * (the charge replaces any previous deployment's).
     */
    Status chargeScreener(TenantHandle handle, std::uint64_t bytes);

    /** Admitted tenant count. */
    std::size_t size() const { return tenants_.size(); }

    /** Sum of admitted partitions plus the outside reservation. */
    std::uint64_t committedBytes() const;

    std::uint64_t dramBudgetBytes() const { return dramBudgetBytes_; }

    /** Ledger iteration (id-sorted, deterministic). */
    const std::map<TenantId, Entry> &tenants() const
    {
        return tenants_;
    }

    /**
     * Snapshot the partition ledger as "tenant.<name>.*" gauges
     * (dram_bytes, cache_quota_bytes, screener_bytes, deploys) plus
     * the device-level "tenant.committed_bytes" /
     * "tenant.count" pair.  No-op while no tenant is admitted, so
     * single-tenant runs keep their metrics byte-identical.
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

    /** One-line ledger for describe(): "a:64MiB/8MiB b:...". */
    std::string describeTable() const;

  private:
    std::uint64_t dramBudgetBytes_;
    std::uint64_t reservedBytes_;
    TenantId nextId_ = 1;
    std::map<TenantId, Entry> tenants_;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_TENANT_HH
