#include "multi_tenant.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace ecssd
{

namespace
{

/** RAII span-name prefix around one lane's serving quantum (no-op
 *  for a null tracer, so un-instrumented runs touch nothing). */
class SpanPrefixScope
{
  public:
    SpanPrefixScope(sim::SpanTracer *tracer,
                    const std::string &prefix)
        : tracer_(tracer)
    {
        if (tracer_) {
            saved_ = tracer_->namePrefix();
            tracer_->setNamePrefix(prefix);
        }
    }

    ~SpanPrefixScope()
    {
        if (tracer_)
            tracer_->setNamePrefix(saved_);
    }

    SpanPrefixScope(const SpanPrefixScope &) = delete;
    SpanPrefixScope &operator=(const SpanPrefixScope &) = delete;

  private:
    sim::SpanTracer *tracer_;
    std::string saved_;
};

} // namespace

MultiTenantServer::MultiTenantServer(const EcssdOptions &options)
    : options_(options), registry_(options.ssd.dramBytes)
{
}

MultiTenantServer::~MultiTenantServer() = default;

ServerConfig
MultiTenantServer::deriveServerConfig(const TenantConfig &tenant,
                                      ServerConfig base)
{
    if (base.requestDeadline == 0)
        base.requestDeadline = tenant.requestDeadline;
    if (tenant.p99TargetMs > 0.0) {
        const sim::Tick target =
            sim::milliseconds(tenant.p99TargetMs);
        // The p99 target drives the overload stack: estimated
        // sojourns past the target shed at admission, and the
        // brownout ladder engages at 0.8x with a 0.4x recovery
        // threshold and a 0.2x healthy-dwell guard — so the tenant
        // degrades its own quality before it can miss its SLO, and
        // long before it can crowd a neighbour off the device.
        if (base.admissionTargetDelay == 0)
            base.admissionTargetDelay = target;
        if (!base.brownout.enabled()) {
            base.brownout.enterDelay = target * 4 / 5;
            base.brownout.exitDelay = target * 2 / 5;
            base.brownout.recoveryGuard = target / 5;
        }
    }
    return base;
}

TenantHandle
MultiTenantServer::addTenant(
    const TenantConfig &config, const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec,
    const ServerConfig &server_config,
    const numeric::FloatMatrix *trained_projection, Status *status)
{
    // The tenant's screener residency plus its cache quota must fit
    // its partition; checked before admission so a refusal leaves
    // the ledger untouched.
    const std::uint64_t screener_bytes =
        options_.int4Placement == accel::Int4Placement::Dram
        ? spec.int4WeightBytes()
        : 0;
    if (screener_bytes + config.cacheQuotaBytes > config.dramBytes) {
        if (status)
            *status = Status::TenantQuotaExceeded;
        return TenantHandle{};
    }

    TenantHandle handle;
    const Status admitted = registry_.admit(config, handle);
    if (status)
        *status = admitted;
    if (admitted != Status::Ok)
        return TenantHandle{};
    registry_.chargeScreener(handle, screener_bytes);

    // The lane's device: the shared architecture with the DRAM
    // budget cut to the partition and the cache sized to the quota.
    EcssdOptions lane_options = options_;
    lane_options.ssd.dramBytes = config.dramBytes;
    lane_options.cache.capacityBytes = config.cacheQuotaBytes;
    lane_options.tenants.clear();

    Lane lane;
    lane.name = config.name;
    lane.ns = config.metricNamespace();
    lane.config = config;
    lane.batchSize = spec.batchSize;
    lane.server = std::make_unique<InferenceServer>(
        weights, spec, lane_options, trained_projection,
        deriveServerConfig(config, server_config));
    if (metrics_)
        lane.metricsView = std::make_unique<sim::MetricsRegistry>(
            *metrics_, lane.ns);
    lane.server->attachObservability(lane.metricsView.get(), spans_);
    lanes_.emplace(handle.id(), std::move(lane));
    return handle;
}

InferenceServer *
MultiTenantServer::server(TenantHandle tenant)
{
    const auto it = tenant.valid() ? lanes_.find(tenant.id())
                                   : lanes_.end();
    return it == lanes_.end() ? nullptr : it->second.server.get();
}

void
MultiTenantServer::serveQuantum(
    Lane &lane, std::size_t k,
    std::vector<InferenceServer::Response> &sink)
{
    // The device is shared: this lane's batch cannot start before
    // the device finished whatever another lane ran last.
    lane.server->alignDeviceClock(sharedClock_);
    const SpanPrefixScope prefixed(spans_, lane.ns);
    std::vector<InferenceServer::Response> batch =
        lane.server->serveBatch(k);
    sharedClock_ = std::max(sharedClock_, lane.server->deviceTime());
    for (InferenceServer::Response &response : batch)
        sink.push_back(std::move(response));
}

std::vector<MultiTenantServer::TenantOutcome>
MultiTenantServer::run(const std::vector<TenantTraffic> &mix,
                       const std::vector<std::vector<float>> &queries,
                       std::size_t k)
{
    ECSSD_ASSERT(!queries.empty(),
                 "multi-tenant serving needs a query pool");
    for (std::size_t a = 0; a < mix.size(); ++a) {
        if (!server(mix[a].tenant))
            sim::fatal("run(): mix entry ", a,
                       " names no admitted tenant");
        for (std::size_t b = a + 1; b < mix.size(); ++b) {
            if (mix[a].tenant.id() == mix[b].tenant.id())
                sim::fatal("run(): tenant appears twice in the mix");
        }
    }

    // Pre-draw every stream (each engine is a pure function of its
    // config) and merge time-ordered; ties break by tenant id so the
    // interleave is deterministic.
    struct Slot
    {
        sim::Arrival arrival;
        TenantId tenant;
    };
    std::vector<Slot> merged;
    for (const TenantTraffic &stream : mix) {
        sim::TrafficEngine engine(stream.traffic);
        for (const sim::Arrival &arrival :
             engine.generate(stream.count))
            merged.push_back(Slot{arrival, stream.tenant.id()});
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Slot &a, const Slot &b) {
                         if (a.arrival.at != b.arrival.at)
                             return a.arrival.at < b.arrival.at;
                         return a.tenant < b.tenant;
                     });

    std::map<TenantId, std::vector<InferenceServer::Response>>
        outcomes;
    for (const TenantTraffic &stream : mix)
        outcomes[stream.tenant.id()];

    for (const Slot &slot : merged) {
        Lane &lane = lanes_.at(slot.tenant);
        // The lane idles forward to the arrival (admission sojourn
        // estimates are measured from a current clock) but never
        // behind the shared device timeline.
        lane.server->alignDeviceClock(slot.arrival.at);
        lane.server->enqueueAt(
            queries[slot.arrival.querySeed % queries.size()],
            slot.arrival.at, slot.arrival.cls);
        // A full device batch is ready: spend one shared-device
        // quantum on it now, in arrival order across tenants.
        if (lane.server->pending() >= lane.batchSize)
            serveQuantum(lane, k, outcomes.at(slot.tenant));
    }

    // Drain round-robin (id order) so no tenant's leftovers
    // monopolize the device tail.
    bool any = true;
    while (any) {
        any = false;
        for (auto &[id, lane] : lanes_) {
            if (lane.server->pending() == 0)
                continue;
            any = true;
            serveQuantum(lane, k, outcomes.at(id));
        }
    }
    // Terminal housekeeping per lane: finish in-flight hot swaps,
    // recover the brownout ladder, flush shed/dropped responses —
    // processAll() on an empty queue does exactly that.
    for (auto &[id, lane] : lanes_) {
        lane.server->alignDeviceClock(sharedClock_);
        const SpanPrefixScope prefixed(spans_, lane.ns);
        for (InferenceServer::Response &response :
             lane.server->processAll(k))
            outcomes.at(id).push_back(std::move(response));
        sharedClock_ =
            std::max(sharedClock_, lane.server->deviceTime());
    }

    std::vector<TenantOutcome> result;
    result.reserve(mix.size());
    for (const TenantTraffic &stream : mix) {
        TenantOutcome outcome;
        outcome.name = lanes_.at(stream.tenant.id()).name;
        outcome.responses =
            std::move(outcomes.at(stream.tenant.id()));
        result.push_back(std::move(outcome));
    }
    return result;
}

void
MultiTenantServer::attachObservability(sim::MetricsRegistry *metrics,
                                       sim::SpanTracer *spans)
{
    metrics_ = metrics;
    spans_ = spans;
    for (auto &[id, lane] : lanes_) {
        std::unique_ptr<sim::MetricsRegistry> view;
        if (metrics)
            view = std::make_unique<sim::MetricsRegistry>(*metrics,
                                                          lane.ns);
        // Re-attach before dropping the old view: the lane must
        // never hold a dangling registry pointer.
        lane.server->attachObservability(view.get(), spans);
        lane.metricsView = std::move(view);
    }
}

void
MultiTenantServer::publishMetrics(sim::MetricsRegistry &registry) const
{
    if (lanes_.empty())
        return;
    registry_.publishMetrics(registry);
    registry.gaugeSet("tenant.device_time_ms",
                      sim::tickToMs(sharedClock_));
    for (const auto &[id, lane] : lanes_) {
        sim::MetricsRegistry view(registry, lane.ns);
        lane.server->publishMetrics(view);
        view.gaugeSet("p99_ms",
                      lane.server->latencyPercentiles().p99());
        view.gaugeSet("p50_ms",
                      lane.server->latencyPercentiles().p50());
        view.gaugeSet("p99_target_ms", lane.config.p99TargetMs);
        view.gaugeSet("sheds",
                      static_cast<double>(
                          lane.server->serverStats().shedRequests));
        view.gaugeSet(
            "timed_out",
            static_cast<double>(
                lane.server->serverStats().timedOutRequests));
    }
}

} // namespace ecssd
