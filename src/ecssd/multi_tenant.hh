/**
 * @file
 * Multi-tenant serving: several models time-multiplexed on one
 * physical ECSSD.
 *
 * Each admitted tenant gets a serving *lane*: an InferenceServer over
 * an EcssdSystem whose DRAM budget is the tenant's partition and
 * whose row cache is sized to the tenant's byte quota — so cache
 * isolation is mechanical (a tenant's cache cannot hold a byte past
 * its quota, and can therefore never evict another tenant's rows),
 * and each lane keeps its own deploy epoch, admission controller, and
 * brownout ladder.
 *
 * The lanes share one device clock.  run() merges every tenant's
 * open-loop arrival stream into one time-ordered sequence and serves
 * batch quanta round-robin: a lane aligns to the shared clock before
 * its quantum and pushes it forward after, so the tenants observe a
 * common device timeline instead of private ones.  SLO enforcement is
 * per tenant and rides the existing stack: a tenant's p99 target
 * derives its admission delay target and brownout thresholds, so an
 * overloaded tenant sheds and browns out *its own* traffic first
 * while a healthy neighbour keeps its latency.
 *
 * A MultiTenantServer with a single tenant behaves exactly like a
 * lone InferenceServer with the same options; the layer adds no
 * device-side behaviour of its own.
 */

#ifndef ECSSD_ECSSD_MULTI_TENANT_HH
#define ECSSD_ECSSD_MULTI_TENANT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ecssd/server.hh"
#include "ecssd/tenant.hh"

namespace ecssd
{

/** The shared-device multi-tenant serving scheduler. */
class MultiTenantServer
{
  public:
    /**
     * @param options Device architecture every lane inherits; each
     *        lane's copy gets its DRAM budget cut to the tenant's
     *        partition and its cache sized to the tenant's quota.
     */
    explicit MultiTenantServer(
        const EcssdOptions &options = EcssdOptions::full());

    ~MultiTenantServer();

    /**
     * Admit one tenant and bring up its serving lane.
     *
     * The tenant's SLO fills the lane's serving policy wherever
     * @p server_config leaves a knob unset: requestDeadline maps
     * directly; a p99 target derives the admission delay target and
     * the brownout enter/exit/guard thresholds (0.8/0.4/0.2 of the
     * target), so overload degrades this tenant before it can hurt a
     * neighbour.
     *
     * @param config Partition/quota/SLO declaration.
     * @param weights The tenant's deployed L x D layer (must outlive
     *        the server).
     * @param spec The tenant's benchmark parameters.
     * @param server_config Explicit serving-policy knobs (override
     *        the SLO derivation where set).
     * @param trained_projection Optional learned projection.
     * @param[out] status TenantQuotaExceeded when the partition does
     *        not fit the device DRAM or the tenant's screener plus
     *        cache quota does not fit the partition (optional).
     * @return The admitted tenant; invalid on failure.
     */
    TenantHandle addTenant(
        const TenantConfig &config,
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const ServerConfig &server_config = ServerConfig{},
        const numeric::FloatMatrix *trained_projection = nullptr,
        Status *status = nullptr);

    /** The tenant admission/partition ledger. */
    const TenantRegistry &registry() const { return registry_; }

    /** One tenant's lane server (nullptr for unknown handles). */
    InferenceServer *server(TenantHandle tenant);

    /** One tenant's traffic stream for run(). */
    struct TenantTraffic
    {
        TenantHandle tenant;
        sim::TrafficConfig traffic;
        /** Arrivals to draw from this tenant's stream. */
        std::uint64_t count = 0;
    };

    /** One tenant's terminal responses from a run() mix. */
    struct TenantOutcome
    {
        std::string name;
        std::vector<InferenceServer::Response> responses;
    };

    /**
     * Serve a per-tenant open-loop traffic mix on the shared device:
     * arrivals merge time-ordered across tenants, each lane serves
     * batch quanta against the shared clock, and the final drain
     * round-robins until every queue is empty (finishing in-flight
     * hot swaps and recovering every brownout ladder).
     *
     * @param mix One stream per entry; a tenant may appear once.
     * @param queries Query pool shared by all tenants; each
     *        arrival's querySeed selects one deterministically.
     * @param k Top-k per request.
     * @return One outcome per mix entry, same order.
     */
    std::vector<TenantOutcome> run(
        const std::vector<TenantTraffic> &mix,
        const std::vector<std::vector<float>> &queries,
        std::size_t k);

    /** The shared device timeline (max over lanes). */
    sim::Tick deviceTime() const { return sharedClock_; }

    /**
     * Attach (or detach, with nullptr) observability sinks.  Every
     * lane records through a "tenant.<name>."-scoped view of
     * @p metrics, and its serving quanta prefix their spans the same
     * way — all tenant telemetry is namespaced, none of it collides.
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /**
     * Snapshot the tenant layer into @p registry: the partition
     * ledger plus, per tenant, the lane's full "server.*" gauge set
     * and its SLO view (p99_ms, p99_target_ms, sheds) under
     * "tenant.<name>.".
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

  private:
    /** One tenant's serving lane. */
    struct Lane
    {
        std::string name;
        /** "tenant.<name>." metric/span namespace. */
        std::string ns;
        TenantConfig config;
        /** Device batch size of the lane's deployed spec (the
         *  quantum trigger). */
        std::size_t batchSize = 1;
        /** Scoped view the lane's server records through. */
        std::unique_ptr<sim::MetricsRegistry> metricsView;
        std::unique_ptr<InferenceServer> server;
    };

    /** Fill unset serving knobs from the tenant's SLO record. */
    static ServerConfig deriveServerConfig(const TenantConfig &tenant,
                                           ServerConfig base);

    /** Serve one quantum on @p lane against the shared clock,
     *  appending its terminal responses to @p sink. */
    void serveQuantum(Lane &lane, std::size_t k,
                      std::vector<InferenceServer::Response> &sink);

    EcssdOptions options_;
    TenantRegistry registry_;
    /** Lanes in tenant-id order (deterministic round-robin). */
    std::map<TenantId, Lane> lanes_;
    sim::Tick sharedClock_ = 0;
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_MULTI_TENANT_HH
