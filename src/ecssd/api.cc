#include "api.hh"

#include <algorithm>

#include "numeric/kernels.hh"
#include "sim/logging.hh"
#include "xclass/metrics.hh"

namespace ecssd
{

const char *
toString(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::Degraded:
        return "degraded";
    case Status::TimedOut:
        return "timed-out";
    case Status::Shed:
        return "shed";
    case Status::WrongMode:
        return "wrong-mode";
    case Status::NotDeployed:
        return "not-deployed";
    case Status::MissingInput:
        return "missing-input";
    case Status::NotScreened:
        return "not-screened";
    case Status::NotClassified:
        return "not-classified";
    case Status::DimensionMismatch:
        return "dimension-mismatch";
    case Status::StaleSession:
        return "stale-session";
    case Status::RedeployActive:
        return "redeploy-active";
    case Status::NoRedeploy:
        return "no-redeploy";
    case Status::UnknownTenant:
        return "unknown-tenant";
    case Status::TenantQuotaExceeded:
        return "tenant-quota-exceeded";
    }
    return "?";
}

namespace
{

/**
 * RAII span-name prefix for one tenant engine's device-side work:
 * every span a pipeline/redeploy call opens while the scope is alive
 * carries the tenant namespace.  A null tracer or empty prefix (the
 * default tenant) touches nothing, so single-tenant span dumps stay
 * byte-identical.
 */
class SpanPrefixScope
{
  public:
    SpanPrefixScope(sim::SpanTracer *tracer,
                    const std::string &prefix)
        : tracer_(prefix.empty() ? nullptr : tracer)
    {
        if (tracer_) {
            saved_ = tracer_->namePrefix();
            tracer_->setNamePrefix(prefix);
        }
    }

    ~SpanPrefixScope()
    {
        if (tracer_)
            tracer_->setNamePrefix(saved_);
    }

    SpanPrefixScope(const SpanPrefixScope &) = delete;
    SpanPrefixScope &operator=(const SpanPrefixScope &) = delete;

  private:
    sim::SpanTracer *tracer_;
    std::string saved_;
};

/** Recent-query ring capacity (warm-up / validation material). */
constexpr std::size_t kRecentQueryCapacity = 32;

/** Staged probe programs run per staging advance step. */
constexpr unsigned kProbesPerStep = 4;

/**
 * The deployed screening policy: threshold filtering with the
 * top-ratio guard band when the threshold passes nothing (the same
 * fallback InferenceSession::screen() serves with).
 */
std::vector<std::uint64_t>
screenWithFallback(xclass::Screener &screener,
                   std::span<const float> feature)
{
    std::vector<std::uint64_t> rows =
        screener.screen(feature, xclass::FilterMode::Threshold);
    if (rows.empty())
        rows = screener.screen(feature, xclass::FilterMode::TopRatio);
    return rows;
}

/**
 * Shadow-scoring recall of @p staged against @p live on one query:
 * the fraction of the live screener's candidates the staged screener
 * also selects.  1.0 when the live screener selects nothing (there
 * is nothing to miss).
 */
double
screenerRecall(xclass::Screener &live, xclass::Screener &staged,
               std::span<const float> query)
{
    const std::vector<std::uint64_t> live_rows =
        screenWithFallback(live, query);
    if (live_rows.empty())
        return 1.0;
    const std::vector<std::uint64_t> staged_rows =
        screenWithFallback(staged, query);
    std::vector<std::uint64_t> common;
    std::set_intersection(live_rows.begin(), live_rows.end(),
                          staged_rows.begin(), staged_rows.end(),
                          std::back_inserter(common));
    return static_cast<double>(common.size())
        / static_cast<double>(live_rows.size());
}

} // namespace

// --- InferenceSession ------------------------------------------------

InferenceSession::InferenceSession(EcssdApi &api)
    : api_(&api), epoch_(api.deployEpoch_)
{
    api_->sessionOpened(epoch_);
}

InferenceSession::InferenceSession(InferenceSession &&other) noexcept
    : api_(other.api_), epoch_(other.epoch_),
      feature_(std::move(other.feature_)),
      int4Sent_(other.int4Sent_), cfp32Sent_(other.cfp32Sent_),
      classified_(other.classified_),
      candidates_(std::move(other.candidates_)),
      scores_(std::move(other.scores_)), latency_(other.latency_)
{
    // The open-session registration moves with the state.
    other.api_ = nullptr;
}

InferenceSession &
InferenceSession::operator=(InferenceSession &&other) noexcept
{
    if (this != &other) {
        if (api_)
            api_->sessionClosed(epoch_);
        api_ = other.api_;
        epoch_ = other.epoch_;
        feature_ = std::move(other.feature_);
        int4Sent_ = other.int4Sent_;
        cfp32Sent_ = other.cfp32Sent_;
        classified_ = other.classified_;
        candidates_ = std::move(other.candidates_);
        scores_ = std::move(other.scores_);
        latency_ = other.latency_;
        other.api_ = nullptr;
    }
    return *this;
}

InferenceSession::~InferenceSession()
{
    if (api_)
        api_->sessionClosed(epoch_);
}

Status
InferenceSession::check() const
{
    if (api_->mode_ != Mode::Accelerator)
        return Status::WrongMode;
    if (!api_->live_.deployed())
        return Status::NotDeployed;
    if (!api_->resolve(epoch_))
        return Status::StaleSession;
    return Status::Ok;
}

Status
InferenceSession::sendInt4(std::span<const float> feature)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    const EcssdApi::DeployedVersion &version =
        *api_->resolve(epoch_);
    if (feature.size() != version.spec->hiddenDim)
        return Status::DimensionMismatch;
    feature_.assign(feature.begin(), feature.end());
    int4Sent_ = true;
    // A new query starts here: drop the previous query's functional
    // state so a failed or repeated sequence can never serve stale
    // candidates or scores.
    candidates_.clear();
    scores_.clear();
    classified_ = false;
    // Feed the recent-query ring the next hot swap warms and
    // validates with.
    api_->recordQuery(feature_);
    return Status::Ok;
}

Status
InferenceSession::sendCfp32(std::span<const float> feature)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    const EcssdApi::DeployedVersion &version =
        *api_->resolve(epoch_);
    if (feature.size() != version.spec->hiddenDim)
        return Status::DimensionMismatch;
    if (!int4Sent_ || feature_.size() != feature.size()
        || !std::equal(feature.begin(), feature.end(),
                       feature_.begin())) {
        feature_.assign(feature.begin(), feature.end());
    }
    cfp32Sent_ = true;
    classified_ = false;
    return Status::Ok;
}

Status
InferenceSession::screen()
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!int4Sent_)
        return Status::MissingInput;
    EcssdApi::DeployedVersion &version = *api_->resolve(epoch_);
    // Screening restarts the candidate phase: any scores of a
    // previous classify() are stale from this point on.
    scores_.clear();
    classified_ = false;
    candidates_ = version.screener->screen(
        feature_, xclass::FilterMode::Threshold);
    // A threshold that filters nothing would stall the FP32 stage;
    // fall back to top-ratio selection as the deployed system's
    // guard band.
    if (candidates_.empty())
        candidates_ = version.screener->screen(
            feature_, xclass::FilterMode::TopRatio);
    return Status::Ok;
}

Status
InferenceSession::classify()
{
    // The drain clock may have expired since the last call; settle
    // it first so the staleness answer below is current.
    api_->pollDrain();
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!cfp32Sent_)
        return Status::MissingInput;
    if (candidates_.empty())
        return Status::NotScreened;

    EcssdApi::DeployedVersion &version = *api_->resolve(epoch_);
    scores_ = version.classifier->scores(
        feature_, candidates_,
        xclass::CandidateClassifier::Datapath::Cfp32AlignmentFree);
    classified_ = true;

    // Device-side timing of the whole screened inference, on the
    // version this session is bound to (an old-epoch session keeps
    // running on the draining device).  A tenant engine stamps its
    // namespace onto every span this run opens.
    const SpanPrefixScope prefixed(api_->spans_,
                                   api_->spanNamespace_);
    version.system->ssd().resetTimelines();
    accel::BatchTiming timing =
        version.system->pipeline().runBatch(candidates_, 0);
    latency_ = timing.latency();
    api_->lastLatency_ = latency_;
    api_->serviceClock_ += latency_;
    api_->pollDrain();
    return Status::Ok;
}

Status
InferenceSession::results(
    std::size_t k, xclass::ApproximateClassifier::Prediction &out)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!classified_)
        return Status::NotClassified;

    out = {};
    out.candidateCount = candidates_.size();
    const std::vector<std::uint64_t> best = xclass::topKIndices(
        std::span<const double>(scores_), k);
    for (const std::uint64_t local : best) {
        out.topCategories.push_back(candidates_[local]);
        out.topScores.push_back(scores_[local]);
    }
    return Status::Ok;
}

// --- EcssdApi --------------------------------------------------------

EcssdApi::EcssdApi(const EcssdOptions &options)
    : options_(options), tenantRegistry_(options.ssd.dramBytes)
{
    // Pin the host-compute ISA up front so a bad request (option or
    // ECSSD_ISA) dies at construction, not mid-deploy.
    numeric::applyIsaRequest(options_.isa);
    // Admit the configured tenants; the builder/validate() already
    // checked each config and the partition sum, so a failure here
    // is a construction-time error, not a caller probe.
    for (const TenantConfig &tenant : options_.tenants) {
        Status status = Status::Ok;
        createTenant(tenant, &status);
        if (status != Status::Ok)
            sim::fatal("tenant '", tenant.name,
                       "' admission failed: ", toString(status));
    }
}

EcssdApi::~EcssdApi() = default;

void
EcssdApi::requireAccelerator(const char *api) const
{
    if (mode_ != Mode::Accelerator)
        sim::fatal(api, " requires accelerator mode; call "
                        "ecssdEnable() first");
}

void
EcssdApi::requireDeployed(const char *api) const
{
    if (!live_.deployed())
        sim::fatal(api, " requires deployed weights; call "
                        "weightDeploy() first");
}

InferenceSession &
EcssdApi::implicitSession()
{
    // A hot swap retires the implicit session with its epoch; the
    // Table 1 wrappers transparently continue on the new version.
    if (implicit_ && !resolve(implicit_->epoch_))
        implicit_.reset();
    if (!implicit_)
        implicit_.reset(new InferenceSession(*this));
    return *implicit_;
}

EcssdApi::DeployedVersion *
EcssdApi::resolve(std::uint64_t epoch)
{
    if (live_.deployed() && epoch == live_.epoch)
        return &live_;
    if (draining_ && draining_->deployed()
        && epoch == draining_->epoch)
        return draining_.get();
    return nullptr;
}

void
EcssdApi::sessionOpened(std::uint64_t epoch)
{
    ++openSessions_[epoch];
}

void
EcssdApi::sessionClosed(std::uint64_t epoch)
{
    const auto it = openSessions_.find(epoch);
    ECSSD_ASSERT(it != openSessions_.end() && it->second > 0,
                 "session close without a matching open");
    if (--it->second == 0)
        openSessions_.erase(it);
    // The last old-epoch session closing is what completes a drain.
    pollDrain();
}

std::uint64_t
EcssdApi::openSessions(std::uint64_t epoch) const
{
    const auto it = openSessions_.find(epoch);
    return it == openSessions_.end() ? 0 : it->second;
}

void
EcssdApi::recordQuery(const std::vector<float> &feature)
{
    if (recentQueries_.size() < kRecentQueryCapacity) {
        recentQueries_.push_back(feature);
        return;
    }
    recentQueries_[recentCursor_] = feature;
    recentCursor_ = (recentCursor_ + 1) % kRecentQueryCapacity;
}

sim::Tick
EcssdApi::weightDeploy(const numeric::FloatMatrix &weights,
                       const xclass::BenchmarkSpec &spec,
                       const numeric::FloatMatrix *trained_projection)
{
    requireAccelerator("weightDeploy");
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");

    // Stop the world: a staged redeploy in flight is superseded (the
    // pre-flip path releases its staging capacity), and any draining
    // version is reclaimed immediately.
    if (redeploy_ && redeploy_->machine.active()) {
        if (redeploy_->machine.preFlip()) {
            rollbackRedeploy(RollbackReason::Aborted);
        } else {
            redeploy_->machine.rollback(RollbackReason::Aborted,
                                        serviceClock_);
            ++redeployRollbacks_;
        }
    }
    draining_.reset();

    // Re-resolve the ISA request (ECSSD_ISA may have changed since
    // construction) before the screener captures its kernel plan.
    numeric::applyIsaRequest(options_.isa);

    DeployedVersion version;
    version.weights = &weights;
    version.spec = spec;
    version.screener = std::make_unique<xclass::Screener>(
        weights, spec, options_.seed, trained_projection);
    version.classifier =
        std::make_unique<xclass::CandidateClassifier>(weights);

    // Hot degrees come from the INT4 row masses (Section 5.3); the
    // precise greedy builder applies because the masses are in
    // memory at deploy time.
    if (options_.layoutKind == layout::LayoutKind::LearningAdaptive) {
        const std::vector<double> masses =
            version.screener->rowAbsMasses();
        version.functionalLayout =
            layout::LearningAdaptiveLayout::build(
                masses, options_.ssd.channels);
    } else {
        version.functionalLayout =
            layout::makeLayout(options_.layoutKind, spec.categories,
                               options_.ssd.channels);
    }

    // A new deployment invalidates every outstanding session and the
    // implicit one; the rebuilt system starts with an empty DRAM
    // hot-row cache (the old layer's rows are gone).
    version.epoch = ++epochCounter_;
    version.versionId = ++versionCounter_;
    deployEpoch_ = version.epoch;
    implicit_.reset();

    // The timing system models the device side of this deployment.
    version.system = std::make_unique<EcssdSystem>(spec, options_);
    version.system->setDeployVersion(version.epoch,
                                     version.versionId);
    version.system->attachObservability(metrics_, spans_);
    live_ = std::move(version);
    return live_.system->deployTimeEstimate();
}

sim::Tick
EcssdApi::weightDeployStreaming(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec,
    const numeric::FloatMatrix *trained_projection)
{
    requireAccelerator("weightDeployStreaming");
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");

    // Layouts without a hotness sort have nothing to stream: the
    // classic path already builds them in O(1) transient host bytes.
    if (options_.layoutKind != layout::LayoutKind::LearningAdaptive)
        return weightDeploy(weights, spec, trained_projection);

    // Stop the world, exactly like weightDeploy().
    if (redeploy_ && redeploy_->machine.active()) {
        if (redeploy_->machine.preFlip()) {
            rollbackRedeploy(RollbackReason::Aborted);
        } else {
            redeploy_->machine.rollback(RollbackReason::Aborted,
                                        serviceClock_);
            ++redeployRollbacks_;
        }
    }
    draining_.reset();

    numeric::applyIsaRequest(options_.isa);

    DeployedVersion version;
    version.weights = &weights;
    version.spec = spec;
    version.screener = std::make_unique<xclass::Screener>(
        weights, spec, options_.seed, trained_projection);
    version.classifier =
        std::make_unique<xclass::CandidateClassifier>(weights);

    // The timed system comes up *before* the layout this time: the
    // streaming build's run spills and merge reads go through its
    // live FTL, so staging GC and wear are real, not assumed.
    version.system = std::make_unique<EcssdSystem>(spec, options_);

    StreamingDeployConfig stream_config;
    stream_config.hostBudgetBytes = options_.deployHostBudgetBytes;
    stream_config.rowBytes =
        options_.weightPrecision == accel::WeightPrecision::Cfp16
        ? spec.hiddenDim * 2ULL
        : spec.rowBytes();
    stream_config.seed = options_.seed;
    stream_config.trainedProjection = trained_projection;

    const MatrixRowSource source(weights);
    StreamingDeployResult outcome = streamingWeightDeploy(
        source, spec.shrunkDim(), options_.ssd.channels,
        options_.ssd, stream_config, &version.system->ssd());
    version.functionalLayout = std::move(outcome.layout);

    version.epoch = ++epochCounter_;
    version.versionId = ++versionCounter_;
    deployEpoch_ = version.epoch;
    implicit_.reset();

    version.system->setDeployVersion(version.epoch,
                                     version.versionId);
    version.system->attachObservability(metrics_, spans_);
    live_ = std::move(version);

    lastStreaming_ = std::move(outcome);
    streamingDeployed_ = true;
    return lastStreaming_.deployTime;
}

void
EcssdApi::filterThreshold(double threshold)
{
    requireDeployed("filterThreshold");
    live_.screener->setThreshold(threshold);
}

void
EcssdApi::calibrateThreshold(
    const std::vector<std::vector<float>> &queries)
{
    requireDeployed("calibrateThreshold");
    live_.screener->calibrate(queries);
}

// --- Staged online redeploy ------------------------------------------

Status
EcssdApi::redeployBegin(const numeric::FloatMatrix &weights,
                        const xclass::BenchmarkSpec &spec,
                        const RedeployConfig &config,
                        const numeric::FloatMatrix *trained_projection)
{
    if (mode_ != Mode::Accelerator)
        return Status::WrongMode;
    if (!live_.deployed())
        return Status::NotDeployed;
    if (redeploy_ && redeploy_->machine.active())
        return Status::RedeployActive;
    if (weights.rows() != spec.categories
        || weights.cols() != spec.hiddenDim)
        return Status::DimensionMismatch;
    config.validate();

    redeploy_ = std::make_unique<StagedRedeploy>();
    StagedRedeploy &r = *redeploy_;
    r.config = config;
    r.weights = &weights;
    r.spec = spec;
    r.projection = trained_projection;
    r.oldEpoch = live_.epoch;
    r.version.versionId = versionCounter_ + 1;
    r.machine.attachObservability(metrics_, spans_);
    r.machine.begin(serviceClock_);

    // The staged INT4 screener claims the live device's leftover
    // DRAM for the duration of the swap; not fitting is the graceful
    // DramPressure rollback, not an abort.
    if (options_.int4Placement == accel::Int4Placement::Dram) {
        const std::uint64_t staged_bytes = spec.int4WeightBytes();
        if (!live_.system->ssd().dram().tryReserve(staged_bytes)) {
            rollbackRedeploy(RollbackReason::DramPressure);
            return Status::Ok;
        }
        r.stagedReserveBytes = staged_bytes;
    }

    // Price the staging: the stop-the-world deploy time of the new
    // footprint, stretched by the IO-budget fraction.
    sim::Tick full_time = 0;
    try {
        full_time = estimateDeployTime(spec, options_.ssd);
    } catch (const sim::FatalError &) {
        rollbackRedeploy(RollbackReason::DramPressure);
        return Status::Ok;
    } catch (const sim::PanicError &) {
        // The INT4 footprint overruns the device DRAM entirely
        // (ECSSD_ASSERT in the estimate): same graceful outcome.
        rollbackRedeploy(RollbackReason::DramPressure);
        return Status::Ok;
    }
    r.ledger.reset(spec.int4WeightBytes() + spec.fp32WeightBytes(),
                   full_time, config.ioBudgetFraction,
                   config.stepBytes);

    // Probe targets: the top of the live device's logical space (the
    // staging area's flash).  Real programs + verify-reads there
    // surface the media faults foreground traffic would see.
    ssdsim::Ftl &ftl = live_.system->ssd().ftl();
    const std::uint64_t probes = std::min<std::uint64_t>(
        config.stagingProbePages, ftl.logicalPages());
    for (std::uint64_t i = 0; i < probes; ++i)
        r.probePages.push_back(ftl.logicalPages() - 1 - i);
    return Status::Ok;
}

Status
EcssdApi::redeployAdvance()
{
    if (!redeploy_ || !redeploy_->machine.active())
        return Status::NoRedeploy;
    const SpanPrefixScope prefixed(spans_, spanNamespace_);
    StagedRedeploy &r = *redeploy_;

    switch (r.machine.phase()) {
    case RedeployPhase::Staging: {
        // Staging stops the moment the device latches read-only —
        // a read-only device can never accept the staged version.
        if (live_.system->ssd().ftl().readOnly()) {
            rollbackRedeploy(RollbackReason::DeviceReadOnly);
            return Status::Ok;
        }
        RollbackReason reason = RollbackReason::None;
        if (!stageProbePages(live_.system->ssd().ftl(), r.probePages,
                             r.probeCursor, kProbesPerStep,
                             serviceClock_, reason)) {
            rollbackRedeploy(reason);
            return Status::Ok;
        }
        // One budgeted chunk of background program time.
        serviceClock_ += r.ledger.step();
        if (!r.ledger.done())
            return Status::Ok;
        // Finish the probe tail before declaring staging complete.
        if (!stageProbePages(
                live_.system->ssd().ftl(), r.probePages,
                r.probeCursor,
                static_cast<unsigned>(r.probePages.size()),
                serviceClock_, reason)) {
            rollbackRedeploy(reason);
            return Status::Ok;
        }
        try {
            buildStagedVersion();
        } catch (const sim::FatalError &) {
            // The staged configuration is infeasible on this device
            // (screener/cache residency): roll back, keep serving.
            rollbackRedeploy(RollbackReason::DramPressure);
            return Status::Ok;
        } catch (const sim::PanicError &) {
            rollbackRedeploy(RollbackReason::DramPressure);
            return Status::Ok;
        }
        r.machine.advanceTo(RedeployPhase::Warming, serviceClock_);
        return Status::Ok;
    }
    case RedeployPhase::Warming:
        if (r.warmed < r.config.warmupQueries
            && r.warmed < recentQueries_.size()) {
            warmOneQuery();
        } else {
            r.machine.advanceTo(RedeployPhase::Validating,
                                serviceClock_);
        }
        return Status::Ok;
    case RedeployPhase::Validating: {
        const std::size_t target = std::min<std::size_t>(
            r.config.validationQueries, recentQueries_.size());
        if (r.validated < target) {
            validateOneQuery();
            return Status::Ok;
        }
        r.recall = r.validated > 0
            ? r.recallSum / static_cast<double>(r.validated)
            : 1.0;
        if (r.recall >= r.config.minValidationRecall)
            flipEpoch();
        else
            rollbackRedeploy(RollbackReason::ValidationRecall);
        return Status::Ok;
    }
    case RedeployPhase::Draining:
        // The background reclaim daemon's poll: service time passes
        // even when no request happens to arrive, so a drain always
        // reaches its deadline.
        serviceClock_ += r.config.drainPollInterval;
        pollDrain();
        return Status::Ok;
    default:
        return Status::NoRedeploy;
    }
}

Status
EcssdApi::redeployAbort()
{
    if (!redeploy_ || !redeploy_->machine.active())
        return Status::NoRedeploy;
    if (!redeploy_->machine.preFlip())
        return Status::RedeployActive;
    rollbackRedeploy(RollbackReason::Aborted);
    return Status::Ok;
}

RedeployStatus
EcssdApi::redeployStatus()
{
    pollDrain();
    RedeployStatus status;
    if (!redeploy_)
        return status;
    const StagedRedeploy &r = *redeploy_;
    status.phase = r.machine.phase();
    status.reason = r.machine.reason();
    status.stagedBytes = r.ledger.stagedBytes();
    status.totalBytes = r.ledger.totalBytes();
    status.validationRecall = r.recall;
    status.oldEpoch = r.oldEpoch;
    status.newEpoch = r.newEpoch;
    status.weightVersion = r.version.versionId;
    status.inFlightOldSessions =
        r.flippedAt > 0 || r.machine.phase() == RedeployPhase::Draining
        ? openSessions(r.oldEpoch)
        : 0;
    status.stagingTime = r.ledger.elapsed();
    status.drainElapsed = r.drainElapsed;
    return status;
}

sim::Tick
EcssdApi::redeployRun()
{
    if (!redeploy_ || !redeploy_->machine.active())
        return 0;
    while (redeploy_ && redeploy_->machine.active())
        redeployAdvance();
    return redeploy_ ? redeploy_->ledger.elapsed() : 0;
}

void
EcssdApi::buildStagedVersion()
{
    StagedRedeploy &r = *redeploy_;
    DeployedVersion version;
    version.weights = r.weights;
    version.spec = r.spec;
    version.versionId = r.version.versionId;
    version.screener = std::make_unique<xclass::Screener>(
        *r.weights, r.spec, options_.seed, r.projection);
    // The staged screener inherits the live screening policy so the
    // shadow-scoring compares weights, not thresholds.
    version.screener->setThreshold(live_.screener->threshold());
    version.classifier =
        std::make_unique<xclass::CandidateClassifier>(*r.weights);
    if (options_.layoutKind == layout::LayoutKind::LearningAdaptive) {
        const std::vector<double> masses =
            version.screener->rowAbsMasses();
        version.functionalLayout =
            layout::LearningAdaptiveLayout::build(
                masses, options_.ssd.channels);
    } else {
        version.functionalLayout = layout::makeLayout(
            options_.layoutKind, r.spec.categories,
            options_.ssd.channels);
    }
    version.system = std::make_unique<EcssdSystem>(r.spec, options_);
    r.version = std::move(version);
}

void
EcssdApi::warmOneQuery()
{
    StagedRedeploy &r = *redeploy_;
    const std::vector<float> &query = recentQueries_[r.warmed];
    ++r.warmed;
    // A query recorded under a different input width cannot replay.
    if (query.size() != r.spec.hiddenDim)
        return;
    const std::vector<std::uint64_t> rows =
        screenWithFallback(*r.version.screener, query);
    // Pre-fill the staged version's DRAM hot-row cache with the rows
    // this query would fetch, so the flip lands warm.
    r.version.system->pipeline().warmRows(rows, 0);
}

void
EcssdApi::validateOneQuery()
{
    StagedRedeploy &r = *redeploy_;
    const std::vector<float> &query = recentQueries_[r.validated];
    ++r.validated;
    if (query.size() != r.spec.hiddenDim
        || query.size() != live_.spec->hiddenDim) {
        // Not comparable across the swap; count it as full recall
        // rather than penalizing an input-width migration.
        r.recallSum += 1.0;
        return;
    }
    r.recallSum +=
        screenerRecall(*live_.screener, *r.version.screener, query);
}

void
EcssdApi::flipEpoch()
{
    StagedRedeploy &r = *redeploy_;
    r.machine.advanceTo(RedeployPhase::Flipping, serviceClock_);

    // The staging claims on the old device end here: the staged
    // version owns its own device from now on, and the old device
    // only has to serve its draining sessions.
    if (r.stagedReserveBytes > 0) {
        live_.system->ssd().dram().release(r.stagedReserveBytes);
        r.stagedReserveBytes = 0;
    }
    for (unsigned i = 0; i < r.probeCursor; ++i)
        live_.system->ssd().ftl().trim(r.probePages[i]);

    draining_ = std::make_unique<DeployedVersion>(std::move(live_));
    live_ = std::move(r.version);
    live_.epoch = ++epochCounter_;
    versionCounter_ = live_.versionId;
    deployEpoch_ = live_.epoch;
    r.newEpoch = live_.epoch;
    live_.system->setDeployVersion(live_.epoch, live_.versionId);
    live_.system->attachObservability(metrics_, spans_);
    r.flippedAt = serviceClock_;

    r.machine.advanceTo(RedeployPhase::Draining, serviceClock_);
    pollDrain();
}

void
EcssdApi::pollDrain()
{
    if (!redeploy_
        || redeploy_->machine.phase() != RedeployPhase::Draining)
        return;
    StagedRedeploy &r = *redeploy_;
    r.drainElapsed = serviceClock_ - r.flippedAt;
    if (!draining_ || openSessions(r.oldEpoch) == 0) {
        commitRedeploy();
        return;
    }
    if (r.drainElapsed >= r.config.drainDeadline) {
        if (r.config.drainTimeoutRollsBack)
            rollbackRedeploy(RollbackReason::DrainTimeout);
        else
            commitRedeploy();
    }
}

void
EcssdApi::commitRedeploy()
{
    StagedRedeploy &r = *redeploy_;
    r.machine.advanceTo(RedeployPhase::Committed, serviceClock_);
    ++redeployCommits_;
    // Reclaim the old version's capacity (its device, DRAM
    // residency, and cache go with it); any session still bound to
    // the old epoch is stale from here on.
    draining_.reset();
}

void
EcssdApi::rollbackRedeploy(RollbackReason reason)
{
    StagedRedeploy &r = *redeploy_;
    if (r.machine.preFlip()) {
        // Release the staging claims on the live device.
        if (r.stagedReserveBytes > 0) {
            live_.system->ssd().dram().release(r.stagedReserveBytes);
            r.stagedReserveBytes = 0;
        }
        for (unsigned i = 0; i < r.probeCursor; ++i)
            live_.system->ssd().ftl().trim(r.probePages[i]);
        r.version = DeployedVersion{};
    } else if (draining_) {
        // Post-flip: restore the old version as live.  Sessions
        // bound to the rolled-back epoch turn stale; old-epoch
        // sessions resume seamlessly — no request ever fails.
        r.drainElapsed = serviceClock_ - r.flippedAt;
        r.version = std::move(live_);
        live_ = std::move(*draining_);
        draining_.reset();
        deployEpoch_ = live_.epoch;
        live_.system->attachObservability(metrics_, spans_);
        // The staging probes live on the restored device; drop them.
        for (unsigned i = 0; i < r.probeCursor; ++i)
            live_.system->ssd().ftl().trim(r.probePages[i]);
    }
    r.machine.rollback(reason, serviceClock_);
    ++redeployRollbacks_;
}

void
EcssdApi::attachObservability(sim::MetricsRegistry *metrics,
                              sim::SpanTracer *spans)
{
    metrics_ = metrics;
    spans_ = spans;
    if (live_.system)
        live_.system->attachObservability(metrics, spans);
    if (redeploy_)
        redeploy_->machine.attachObservability(metrics, spans);
    // Tenant engines observe through per-tenant scoped views, so
    // every counter/gauge/histogram they record lands in the user's
    // registry under "tenant.<name>."; spans share the user's tracer
    // and are prefixed at emission (SpanPrefixScope).  Re-attach
    // before dropping the old view: the engine must never hold a
    // dangling registry pointer.
    for (auto &[id, engine] : tenantEngines_) {
        std::unique_ptr<sim::MetricsRegistry> view;
        if (metrics)
            view = std::make_unique<sim::MetricsRegistry>(
                *metrics, engine.ns);
        engine.api->attachObservability(view.get(), spans);
        engine.metricsView = std::move(view);
    }
}

void
EcssdApi::publishRedeployMetrics(sim::MetricsRegistry &registry)
{
    if (!redeploy_)
        return;
    const RedeployStatus status = redeployStatus();
    registry.gaugeSet("redeploy.phase",
                      static_cast<double>(status.phase));
    registry.gaugeSet("redeploy.staged_bytes",
                      static_cast<double>(status.stagedBytes));
    registry.gaugeSet("redeploy.total_bytes",
                      static_cast<double>(status.totalBytes));
    registry.gaugeSet("redeploy.validation_recall",
                      status.validationRecall);
    registry.gaugeSet("redeploy.staging_ms",
                      sim::tickToMs(status.stagingTime));
    registry.gaugeSet("redeploy.drain_ms",
                      sim::tickToMs(status.drainElapsed));
    registry.gaugeSet("redeploy.committed",
                      static_cast<double>(redeployCommits_));
    registry.gaugeSet("redeploy.rolled_back",
                      static_cast<double>(redeployRollbacks_));
}

void
EcssdApi::publishDeployMetrics(sim::MetricsRegistry &registry)
{
    if (!streamingDeployed_)
        return;
    registry.gaugeSet("deploy.streaming_ms",
                      sim::tickToMs(lastStreaming_.deployTime));
    registry.gaugeSet(
        "deploy.host_peak_bytes",
        static_cast<double>(lastStreaming_.hostPeakBytes));
    registry.gaugeSet(
        "deploy.host_budget_bytes",
        static_cast<double>(lastStreaming_.hostBudgetBytes));
    registry.gaugeSet(
        "deploy.runs_spilled",
        static_cast<double>(lastStreaming_.runsSpilled));
    registry.gaugeSet(
        "deploy.spill_pages_written",
        static_cast<double>(lastStreaming_.spillPagesWritten));
    registry.gaugeSet(
        "deploy.spill_pages_read",
        static_cast<double>(lastStreaming_.spillPagesRead));
    registry.gaugeSet(
        "deploy.rows_placed",
        static_cast<double>(lastStreaming_.rowsPlaced));
}

void
EcssdApi::publishKernelMetrics(sim::MetricsRegistry &registry)
{
    if (!live_.deployed())
        return;
    const numeric::KernelPlan &plan = live_.screener->kernelPlan();
    registry.gaugeSet("kernel.isa",
                      static_cast<double>(static_cast<int>(plan.isa)));
    registry.gaugeSet("kernel.rows", static_cast<double>(plan.rows));
    registry.gaugeSet("kernel.cols", static_cast<double>(plan.cols));
    registry.gaugeSet("kernel.row_chunk",
                      static_cast<double>(plan.rowChunk));
    registry.gaugeSet("kernel.query_tile",
                      static_cast<double>(plan.queryTile));
    registry.gaugeSet("kernel.ns_per_row", plan.nsPerRow);
    registry.gaugeSet("kernel.candidates",
                      static_cast<double>(plan.candidates.size()));
}

// --- Tenants ---------------------------------------------------------

TenantHandle
EcssdApi::createTenant(const TenantConfig &config, Status *status)
{
    if (isTenantEngine_)
        sim::fatal("createTenant on a tenant engine: tenants do not "
                   "nest (one level of DRAM partitioning)");
    TenantHandle handle;
    const Status admitted = tenantRegistry_.admit(config, handle);
    if (status)
        *status = admitted;
    if (admitted != Status::Ok)
        return TenantHandle{};

    // The tenant's engine is a full device stack over its partition:
    // the DRAM budget is cut to the partition and the row cache is
    // sized to the byte quota, so quota isolation is mechanical —
    // this tenant's cache *cannot* hold a byte past its quota, and
    // its screener residency is reserve()-checked against its own
    // partition, never the neighbours'.
    EcssdOptions engine_options = options_;
    engine_options.ssd.dramBytes = config.dramBytes;
    engine_options.cache.capacityBytes = config.cacheQuotaBytes;
    engine_options.tenants.clear();

    TenantEngine engine;
    engine.name = config.name;
    engine.ns = config.metricNamespace();
    engine.api = std::make_unique<EcssdApi>(engine_options);
    engine.api->isTenantEngine_ = true;
    engine.api->spanNamespace_ = engine.ns;
    // Tenant work is accelerator-mode by definition.
    engine.api->ecssdEnable();
    if (metrics_)
        engine.metricsView = std::make_unique<sim::MetricsRegistry>(
            *metrics_, engine.ns);
    engine.api->attachObservability(engine.metricsView.get(),
                                    spans_);
    tenantEngines_.emplace(handle.id(), std::move(engine));
    return handle;
}

EcssdApi *
EcssdApi::resolveTenant(TenantHandle tenant, Status *status)
{
    const auto it = tenant.valid()
        ? tenantEngines_.find(tenant.id())
        : tenantEngines_.end();
    if (it == tenantEngines_.end()) {
        if (status)
            *status = Status::UnknownTenant;
        return nullptr;
    }
    if (status)
        *status = Status::Ok;
    return it->second.api.get();
}

EcssdApi *
EcssdApi::tenantEngine(TenantHandle tenant)
{
    return resolveTenant(tenant, nullptr);
}

Status
EcssdApi::tenantDeployFits(TenantHandle tenant,
                           const xclass::BenchmarkSpec &spec) const
{
    const TenantRegistry::Entry *entry =
        tenantRegistry_.entry(tenant);
    if (!entry)
        return Status::UnknownTenant;
    const std::uint64_t screener_bytes =
        options_.int4Placement == accel::Int4Placement::Dram
        ? spec.int4WeightBytes()
        : 0;
    if (screener_bytes + entry->config.cacheQuotaBytes
        > entry->config.dramBytes)
        return Status::TenantQuotaExceeded;
    return Status::Ok;
}

void
EcssdApi::syncTenantCharge(TenantHandle tenant)
{
    TenantEngine &engine = tenantEngines_.at(tenant.id());
    const EcssdApi &api = *engine.api;
    if (!api.live_.deployed()
        || api.live_.versionId == engine.chargedVersion)
        return;
    const std::uint64_t screener_bytes =
        options_.int4Placement == accel::Int4Placement::Dram
        ? api.live_.spec->int4WeightBytes()
        : 0;
    tenantRegistry_.chargeScreener(tenant, screener_bytes);
    engine.chargedVersion = api.live_.versionId;
}

Status
EcssdApi::weightDeploy(TenantHandle tenant,
                       const numeric::FloatMatrix &weights,
                       const xclass::BenchmarkSpec &spec,
                       sim::Tick &deploy_time,
                       const numeric::FloatMatrix *trained_projection)
{
    Status status = Status::Ok;
    EcssdApi *engine = resolveTenant(tenant, &status);
    if (!engine)
        return status;
    if (const Status fit = tenantDeployFits(tenant, spec);
        fit != Status::Ok)
        return fit;
    deploy_time =
        engine->weightDeploy(weights, spec, trained_projection);
    syncTenantCharge(tenant);
    return Status::Ok;
}

Status
EcssdApi::weightDeployStreaming(
    TenantHandle tenant, const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, sim::Tick &deploy_time,
    const numeric::FloatMatrix *trained_projection)
{
    Status status = Status::Ok;
    EcssdApi *engine = resolveTenant(tenant, &status);
    if (!engine)
        return status;
    if (const Status fit = tenantDeployFits(tenant, spec);
        fit != Status::Ok)
        return fit;
    deploy_time = engine->weightDeployStreaming(weights, spec,
                                                trained_projection);
    syncTenantCharge(tenant);
    return Status::Ok;
}

std::optional<InferenceSession>
EcssdApi::beginInference(TenantHandle tenant, Status *status)
{
    EcssdApi *engine = resolveTenant(tenant, status);
    if (!engine)
        return std::nullopt;
    return std::optional<InferenceSession>(engine->beginInference());
}

Status
EcssdApi::redeployBegin(TenantHandle tenant,
                        const numeric::FloatMatrix &weights,
                        const xclass::BenchmarkSpec &spec,
                        const RedeployConfig &config,
                        const numeric::FloatMatrix *trained_projection)
{
    Status status = Status::Ok;
    EcssdApi *engine = resolveTenant(tenant, &status);
    if (!engine)
        return status;
    if (const Status fit = tenantDeployFits(tenant, spec);
        fit != Status::Ok)
        return fit;
    return engine->redeployBegin(weights, spec, config,
                                 trained_projection);
}

Status
EcssdApi::redeployAdvance(TenantHandle tenant)
{
    Status status = Status::Ok;
    EcssdApi *engine = resolveTenant(tenant, &status);
    if (!engine)
        return status;
    const Status advanced = engine->redeployAdvance();
    syncTenantCharge(tenant);
    return advanced;
}

Status
EcssdApi::redeployRun(TenantHandle tenant,
                      sim::Tick &background_time)
{
    Status status = Status::Ok;
    EcssdApi *engine = resolveTenant(tenant, &status);
    if (!engine)
        return status;
    background_time = engine->redeployRun();
    syncTenantCharge(tenant);
    return Status::Ok;
}

Status
EcssdApi::deployEpoch(TenantHandle tenant,
                      std::uint64_t &epoch) const
{
    const TenantRegistry::Entry *entry =
        tenantRegistry_.entry(tenant);
    if (!entry)
        return Status::UnknownTenant;
    epoch = tenantEngines_.at(tenant.id()).api->deployEpoch();
    return Status::Ok;
}

void
EcssdApi::publishTenantMetrics(sim::MetricsRegistry &registry)
{
    if (tenantEngines_.empty())
        return;
    tenantRegistry_.publishMetrics(registry);
    for (auto &[id, engine] : tenantEngines_) {
        sim::MetricsRegistry view(registry, engine.ns);
        EcssdApi &api = *engine.api;
        view.gaugeSet("deploy_epoch",
                      static_cast<double>(api.deployEpoch()));
        view.gaugeSet("weight_version",
                      static_cast<double>(api.weightVersion()));
        view.gaugeSet("service_time_ms",
                      sim::tickToMs(api.serviceTime()));
        api.publishRedeployMetrics(view);
        api.publishDeployMetrics(view);
    }
}

// --- Table 1 wrappers ------------------------------------------------

void
EcssdApi::int4InputSend(std::span<const float> feature)
{
    requireAccelerator("int4InputSend");
    requireDeployed("int4InputSend");
    if (implicitSession().sendInt4(feature)
        == Status::DimensionMismatch)
        sim::panic("feature dimension mismatch");
}

void
EcssdApi::cfp32InputSend(std::span<const float> feature)
{
    requireAccelerator("cfp32InputSend");
    requireDeployed("cfp32InputSend");
    if (implicitSession().sendCfp32(feature)
        == Status::DimensionMismatch)
        sim::panic("feature dimension mismatch");
}

void
EcssdApi::int4Screen()
{
    requireAccelerator("int4Screen");
    requireDeployed("int4Screen");
    if (!implicit_ || implicit_->screen() != Status::Ok)
        sim::fatal("int4Screen without int4InputSend");
}

void
EcssdApi::cfp32Classify()
{
    requireAccelerator("cfp32Classify");
    requireDeployed("cfp32Classify");
    const Status status =
        implicit_ ? implicit_->classify() : Status::MissingInput;
    switch (status) {
    case Status::Ok:
        break;
    case Status::NotScreened:
        sim::fatal("cfp32Classify without candidates; run "
                   "int4Screen first");
    default:
        sim::fatal("cfp32Classify without cfp32InputSend");
    }
}

xclass::ApproximateClassifier::Prediction
EcssdApi::getResults(std::size_t k)
{
    requireAccelerator("getResults");
    xclass::ApproximateClassifier::Prediction prediction;
    if (!implicit_
        || implicit_->results(k, prediction) != Status::Ok)
        sim::fatal("getResults before cfp32Classify");
    return prediction;
}

// --- SSD mode --------------------------------------------------------

sim::Tick
EcssdApi::ssdWrite(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdWrite requires SSD mode");
    if (!ssdMode_)
        ssdMode_ = std::make_unique<EcssdSystem>(
            xclass::BenchmarkSpec{"ssd-mode", 2, 8}, options_);
    sim::Tick done = 0;
    ssdMode_->ssd().hostWrite(lpa,
                              [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

sim::Tick
EcssdApi::ssdRead(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdRead requires SSD mode");
    if (!ssdMode_)
        sim::fatal("ssdRead of empty device");
    sim::Tick done = 0;
    ssdMode_->ssd().hostRead(lpa,
                             [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

} // namespace ecssd
