#include "api.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "xclass/metrics.hh"

namespace ecssd
{

EcssdApi::EcssdApi(const EcssdOptions &options) : options_(options)
{
}

void
EcssdApi::requireAccelerator(const char *api) const
{
    if (mode_ != Mode::Accelerator)
        sim::fatal(api, " requires accelerator mode; call "
                        "ecssdEnable() first");
}

void
EcssdApi::requireDeployed(const char *api) const
{
    if (!screener_)
        sim::fatal(api, " requires deployed weights; call "
                        "weightDeploy() first");
}

sim::Tick
EcssdApi::weightDeploy(const numeric::FloatMatrix &weights,
                       const xclass::BenchmarkSpec &spec,
                       const numeric::FloatMatrix *trained_projection)
{
    requireAccelerator("weightDeploy");
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");

    weights_ = &weights;
    spec_ = spec;
    screener_ = std::make_unique<xclass::Screener>(
        weights, spec, options_.seed, trained_projection);
    classifier_ =
        std::make_unique<xclass::CandidateClassifier>(weights);

    // Hot degrees come from the INT4 row masses (Section 5.3); the
    // precise greedy builder applies because the masses are in
    // memory at deploy time.
    if (options_.layoutKind == layout::LayoutKind::LearningAdaptive) {
        const std::vector<double> masses =
            screener_->rowAbsMasses();
        functionalLayout_ = layout::LearningAdaptiveLayout::build(
            masses, options_.ssd.channels);
    } else {
        functionalLayout_ =
            layout::makeLayout(options_.layoutKind, spec.categories,
                               options_.ssd.channels);
    }

    // The timing system models the device side of this deployment.
    system_ = std::make_unique<EcssdSystem>(spec, options_);
    return system_->deployTimeEstimate();
}

void
EcssdApi::filterThreshold(double threshold)
{
    requireDeployed("filterThreshold");
    screener_->setThreshold(threshold);
}

void
EcssdApi::calibrateThreshold(
    const std::vector<std::vector<float>> &queries)
{
    requireDeployed("calibrateThreshold");
    screener_->calibrate(queries);
}

void
EcssdApi::int4InputSend(std::span<const float> feature)
{
    requireAccelerator("int4InputSend");
    requireDeployed("int4InputSend");
    ECSSD_ASSERT(feature.size() == spec_->hiddenDim,
                 "feature dimension mismatch");
    pendingFeature_.assign(feature.begin(), feature.end());
    int4Sent_ = true;
    classified_ = false;
}

void
EcssdApi::cfp32InputSend(std::span<const float> feature)
{
    requireAccelerator("cfp32InputSend");
    requireDeployed("cfp32InputSend");
    ECSSD_ASSERT(feature.size() == spec_->hiddenDim,
                 "feature dimension mismatch");
    if (!int4Sent_ || pendingFeature_.size() != feature.size()
        || !std::equal(feature.begin(), feature.end(),
                       pendingFeature_.begin())) {
        pendingFeature_.assign(feature.begin(), feature.end());
    }
    cfp32Sent_ = true;
    classified_ = false;
}

void
EcssdApi::int4Screen()
{
    requireAccelerator("int4Screen");
    requireDeployed("int4Screen");
    if (!int4Sent_)
        sim::fatal("int4Screen without int4InputSend");
    candidates_ = screener_->screen(pendingFeature_,
                                    xclass::FilterMode::Threshold);
    // A threshold that filters nothing would stall the FP32 stage;
    // fall back to top-ratio selection as the deployed system's
    // guard band.
    if (candidates_.empty())
        candidates_ = screener_->screen(
            pendingFeature_, xclass::FilterMode::TopRatio);
}

void
EcssdApi::cfp32Classify()
{
    requireAccelerator("cfp32Classify");
    requireDeployed("cfp32Classify");
    if (!cfp32Sent_)
        sim::fatal("cfp32Classify without cfp32InputSend");
    if (candidates_.empty())
        sim::fatal("cfp32Classify without candidates; run "
                   "int4Screen first");

    candidateScores_ = classifier_->scores(
        pendingFeature_, candidates_,
        xclass::CandidateClassifier::Datapath::Cfp32AlignmentFree);
    classified_ = true;

    // Device-side timing of the whole screened inference.
    system_->ssd().resetTimelines();
    accel::BatchTiming timing =
        system_->pipeline().runBatch(candidates_, 0);
    lastLatency_ = timing.latency();
}

xclass::ApproximateClassifier::Prediction
EcssdApi::getResults(std::size_t k)
{
    requireAccelerator("getResults");
    if (!classified_)
        sim::fatal("getResults before cfp32Classify");

    xclass::ApproximateClassifier::Prediction prediction;
    prediction.candidateCount = candidates_.size();
    const std::vector<std::uint64_t> best = xclass::topKIndices(
        std::span<const double>(candidateScores_), k);
    for (const std::uint64_t local : best) {
        prediction.topCategories.push_back(candidates_[local]);
        prediction.topScores.push_back(candidateScores_[local]);
    }
    return prediction;
}

sim::Tick
EcssdApi::ssdWrite(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdWrite requires SSD mode");
    if (!ssdMode_)
        ssdMode_ = std::make_unique<EcssdSystem>(
            xclass::BenchmarkSpec{"ssd-mode", 2, 8}, options_);
    sim::Tick done = 0;
    ssdMode_->ssd().hostWrite(lpa,
                              [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

sim::Tick
EcssdApi::ssdRead(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdRead requires SSD mode");
    if (!ssdMode_)
        sim::fatal("ssdRead of empty device");
    sim::Tick done = 0;
    ssdMode_->ssd().hostRead(lpa,
                             [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

} // namespace ecssd
