#include "api.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "xclass/metrics.hh"

namespace ecssd
{

const char *
toString(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::WrongMode:
        return "wrong-mode";
    case Status::NotDeployed:
        return "not-deployed";
    case Status::MissingInput:
        return "missing-input";
    case Status::NotScreened:
        return "not-screened";
    case Status::NotClassified:
        return "not-classified";
    case Status::DimensionMismatch:
        return "dimension-mismatch";
    case Status::StaleSession:
        return "stale-session";
    }
    return "?";
}

// --- InferenceSession ------------------------------------------------

InferenceSession::InferenceSession(EcssdApi &api)
    : api_(&api), epoch_(api.deployEpoch_)
{
}

Status
InferenceSession::check() const
{
    if (api_->mode_ != Mode::Accelerator)
        return Status::WrongMode;
    if (!api_->screener_)
        return Status::NotDeployed;
    if (epoch_ != api_->deployEpoch_)
        return Status::StaleSession;
    return Status::Ok;
}

Status
InferenceSession::sendInt4(std::span<const float> feature)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (feature.size() != api_->spec_->hiddenDim)
        return Status::DimensionMismatch;
    feature_.assign(feature.begin(), feature.end());
    int4Sent_ = true;
    // A new query starts here: drop the previous query's functional
    // state so a failed or repeated sequence can never serve stale
    // candidates or scores.
    candidates_.clear();
    scores_.clear();
    classified_ = false;
    return Status::Ok;
}

Status
InferenceSession::sendCfp32(std::span<const float> feature)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (feature.size() != api_->spec_->hiddenDim)
        return Status::DimensionMismatch;
    if (!int4Sent_ || feature_.size() != feature.size()
        || !std::equal(feature.begin(), feature.end(),
                       feature_.begin())) {
        feature_.assign(feature.begin(), feature.end());
    }
    cfp32Sent_ = true;
    classified_ = false;
    return Status::Ok;
}

Status
InferenceSession::screen()
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!int4Sent_)
        return Status::MissingInput;
    // Screening restarts the candidate phase: any scores of a
    // previous classify() are stale from this point on.
    scores_.clear();
    classified_ = false;
    candidates_ = api_->screener_->screen(
        feature_, xclass::FilterMode::Threshold);
    // A threshold that filters nothing would stall the FP32 stage;
    // fall back to top-ratio selection as the deployed system's
    // guard band.
    if (candidates_.empty())
        candidates_ = api_->screener_->screen(
            feature_, xclass::FilterMode::TopRatio);
    return Status::Ok;
}

Status
InferenceSession::classify()
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!cfp32Sent_)
        return Status::MissingInput;
    if (candidates_.empty())
        return Status::NotScreened;

    scores_ = api_->classifier_->scores(
        feature_, candidates_,
        xclass::CandidateClassifier::Datapath::Cfp32AlignmentFree);
    classified_ = true;

    // Device-side timing of the whole screened inference.
    api_->system_->ssd().resetTimelines();
    accel::BatchTiming timing =
        api_->system_->pipeline().runBatch(candidates_, 0);
    latency_ = timing.latency();
    api_->lastLatency_ = latency_;
    return Status::Ok;
}

Status
InferenceSession::results(
    std::size_t k, xclass::ApproximateClassifier::Prediction &out)
{
    if (const Status guard = check(); guard != Status::Ok)
        return guard;
    if (!classified_)
        return Status::NotClassified;

    out = {};
    out.candidateCount = candidates_.size();
    const std::vector<std::uint64_t> best = xclass::topKIndices(
        std::span<const double>(scores_), k);
    for (const std::uint64_t local : best) {
        out.topCategories.push_back(candidates_[local]);
        out.topScores.push_back(scores_[local]);
    }
    return Status::Ok;
}

// --- EcssdApi --------------------------------------------------------

EcssdApi::EcssdApi(const EcssdOptions &options) : options_(options)
{
}

void
EcssdApi::requireAccelerator(const char *api) const
{
    if (mode_ != Mode::Accelerator)
        sim::fatal(api, " requires accelerator mode; call "
                        "ecssdEnable() first");
}

void
EcssdApi::requireDeployed(const char *api) const
{
    if (!screener_)
        sim::fatal(api, " requires deployed weights; call "
                        "weightDeploy() first");
}

InferenceSession &
EcssdApi::implicitSession()
{
    if (!implicit_)
        implicit_.reset(new InferenceSession(*this));
    return *implicit_;
}

sim::Tick
EcssdApi::weightDeploy(const numeric::FloatMatrix &weights,
                       const xclass::BenchmarkSpec &spec,
                       const numeric::FloatMatrix *trained_projection)
{
    requireAccelerator("weightDeploy");
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");

    weights_ = &weights;
    spec_ = spec;
    screener_ = std::make_unique<xclass::Screener>(
        weights, spec, options_.seed, trained_projection);
    classifier_ =
        std::make_unique<xclass::CandidateClassifier>(weights);

    // Hot degrees come from the INT4 row masses (Section 5.3); the
    // precise greedy builder applies because the masses are in
    // memory at deploy time.
    if (options_.layoutKind == layout::LayoutKind::LearningAdaptive) {
        const std::vector<double> masses =
            screener_->rowAbsMasses();
        functionalLayout_ = layout::LearningAdaptiveLayout::build(
            masses, options_.ssd.channels);
    } else {
        functionalLayout_ =
            layout::makeLayout(options_.layoutKind, spec.categories,
                               options_.ssd.channels);
    }

    // A new deployment invalidates every outstanding session and the
    // implicit one; the rebuilt system starts with an empty DRAM
    // hot-row cache (the old layer's rows are gone).
    ++deployEpoch_;
    implicit_.reset();

    // The timing system models the device side of this deployment.
    system_ = std::make_unique<EcssdSystem>(spec, options_);
    return system_->deployTimeEstimate();
}

void
EcssdApi::filterThreshold(double threshold)
{
    requireDeployed("filterThreshold");
    screener_->setThreshold(threshold);
}

void
EcssdApi::calibrateThreshold(
    const std::vector<std::vector<float>> &queries)
{
    requireDeployed("calibrateThreshold");
    screener_->calibrate(queries);
}

void
EcssdApi::int4InputSend(std::span<const float> feature)
{
    requireAccelerator("int4InputSend");
    requireDeployed("int4InputSend");
    if (implicitSession().sendInt4(feature)
        == Status::DimensionMismatch)
        sim::panic("feature dimension mismatch");
}

void
EcssdApi::cfp32InputSend(std::span<const float> feature)
{
    requireAccelerator("cfp32InputSend");
    requireDeployed("cfp32InputSend");
    if (implicitSession().sendCfp32(feature)
        == Status::DimensionMismatch)
        sim::panic("feature dimension mismatch");
}

void
EcssdApi::int4Screen()
{
    requireAccelerator("int4Screen");
    requireDeployed("int4Screen");
    if (!implicit_ || implicit_->screen() != Status::Ok)
        sim::fatal("int4Screen without int4InputSend");
}

void
EcssdApi::cfp32Classify()
{
    requireAccelerator("cfp32Classify");
    requireDeployed("cfp32Classify");
    const Status status =
        implicit_ ? implicit_->classify() : Status::MissingInput;
    switch (status) {
    case Status::Ok:
        break;
    case Status::NotScreened:
        sim::fatal("cfp32Classify without candidates; run "
                   "int4Screen first");
    default:
        sim::fatal("cfp32Classify without cfp32InputSend");
    }
}

xclass::ApproximateClassifier::Prediction
EcssdApi::getResults(std::size_t k)
{
    requireAccelerator("getResults");
    xclass::ApproximateClassifier::Prediction prediction;
    if (!implicit_
        || implicit_->results(k, prediction) != Status::Ok)
        sim::fatal("getResults before cfp32Classify");
    return prediction;
}

sim::Tick
EcssdApi::ssdWrite(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdWrite requires SSD mode");
    if (!ssdMode_)
        ssdMode_ = std::make_unique<EcssdSystem>(
            xclass::BenchmarkSpec{"ssd-mode", 2, 8}, options_);
    sim::Tick done = 0;
    ssdMode_->ssd().hostWrite(lpa,
                              [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

sim::Tick
EcssdApi::ssdRead(ssdsim::LogicalPage lpa)
{
    if (mode_ != Mode::Ssd)
        sim::fatal("ssdRead requires SSD mode");
    if (!ssdMode_)
        sim::fatal("ssdRead of empty device");
    sim::Tick done = 0;
    ssdMode_->ssd().hostRead(lpa,
                             [&done](sim::Tick t) { done = t; });
    ssdMode_->ssd().queue().run();
    return done;
}

} // namespace ecssd
