#include "scale_out.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{

ScaleOutEcssd::ScaleOutEcssd(const xclass::BenchmarkSpec &spec,
                             unsigned devices,
                             const EcssdOptions &options)
    : fullSpec_(spec)
{
    ECSSD_ASSERT(devices > 0, "scale-out needs at least one device");
    shardSpec_ = spec;
    shardSpec_.categories =
        (spec.categories + devices - 1) / devices;
    shardSpec_.name = spec.name + "-shard";
    ECSSD_ASSERT(shardSpec_.int4WeightBytes()
                     <= options.ssd.dramBytes,
                 "shard INT4 matrix does not fit the device DRAM; "
                 "increase the device count");

    for (unsigned d = 0; d < devices; ++d) {
        EcssdOptions shard_options = options;
        // Distinct trace seeds per shard: each partition sees its
        // own categories' candidate structure.
        shard_options.seed = options.seed + d;
        shards_.push_back(std::make_unique<EcssdSystem>(
            shardSpec_, shard_options));
    }
}

unsigned
ScaleOutEcssd::devicesNeeded(const xclass::BenchmarkSpec &spec,
                             std::uint64_t dram_bytes)
{
    // The paper plans DRAM at ~80% fill (the rest holds L2P tables
    // and management data).
    const std::uint64_t usable = static_cast<std::uint64_t>(
        static_cast<double>(dram_bytes) * 0.8);
    ECSSD_ASSERT(usable > 0, "device has no usable DRAM");
    return static_cast<unsigned>(
        (spec.int4WeightBytes() + usable - 1) / usable);
}

ScaleOutResult
ScaleOutEcssd::runInference(unsigned batches)
{
    ScaleOutResult result;
    sim::Tick slowest = 0;
    for (const std::unique_ptr<EcssdSystem> &shard : shards_) {
        accel::RunResult run = shard->runInference(batches);
        slowest = std::max(slowest, run.totalTime);
        result.totalEnergyUj +=
            shard->estimateRunEnergy(run).totalUj();
        result.shards.push_back(std::move(run));
    }
    // Devices run concurrently; the host-side top-k merge of
    // per-shard results is a trivial K-way merge over the PCIe
    // fabric, modeled as a small fixed cost per batch.
    const sim::Tick merge =
        sim::microseconds(5.0) * batches * devices();
    result.totalTime = slowest + merge;
    result.meanBatchMs = sim::tickToMs(result.totalTime)
        / std::max(1u, batches);
    return result;
}

} // namespace ecssd
