#include "scale_out.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace ecssd
{

ScaleOutEcssd::ScaleOutEcssd(const xclass::BenchmarkSpec &spec,
                             unsigned devices,
                             const EcssdOptions &options)
    : fullSpec_(spec), options_(options)
{
    ECSSD_ASSERT(devices > 0, "scale-out needs at least one device");
    shardSpec_ = spec;
    shardSpec_.categories =
        (spec.categories + devices - 1) / devices;
    shardSpec_.name = spec.name + "-shard";
    ECSSD_ASSERT(shardSpec_.int4WeightBytes()
                     <= options.ssd.dramBytes,
                 "shard INT4 matrix does not fit the device DRAM; "
                 "increase the device count");

    pool_ = std::make_unique<sim::ThreadPool>(options.threads);
    for (unsigned d = 0; d < devices; ++d) {
        EcssdOptions shard_options = options;
        // Distinct trace seeds per shard: each partition sees its
        // own categories' candidate structure.
        shard_options.seed = options.seed + d;
        // Fleet-level fan-out is the parallel dimension here: the
        // per-shard systems run single-threaded inside it.
        shard_options.threads = 1;
        shards_.push_back(std::make_unique<EcssdSystem>(
            shardSpec_, shard_options));
        shards_.back()->setDeployVersion(fleetEpoch_, fleetVersion_);
    }
    health_.resize(devices);
}

unsigned
ScaleOutEcssd::devicesNeeded(const xclass::BenchmarkSpec &spec,
                             std::uint64_t dram_bytes)
{
    // The paper plans DRAM at ~80% fill (the rest holds L2P tables
    // and management data).
    const std::uint64_t usable = static_cast<std::uint64_t>(
        static_cast<double>(dram_bytes) * 0.8);
    if (usable == 0) {
        // A user/configuration error, not a simulator bug: without
        // usable DRAM the shard count is unbounded (and the division
        // below would be by zero).
        sim::fatal("devicesNeeded: per-device DRAM of ", dram_bytes,
                   " bytes leaves no usable weight capacity");
    }
    return static_cast<unsigned>(
        (spec.int4WeightBytes() + usable - 1) / usable);
}

void
ScaleOutEcssd::failShard(unsigned shard)
{
    failShardAfterBatches(shard, 0);
}

void
ScaleOutEcssd::failShardAfterBatches(unsigned shard,
                                     unsigned batches)
{
    ECSSD_ASSERT(shard < shards_.size(), "shard index out of range");
    health_[shard].failAfterBatches = batches;
    if (batches == 0)
        health_[shard].alive = false;
}

bool
ScaleOutEcssd::shardAlive(unsigned shard) const
{
    ECSSD_ASSERT(shard < shards_.size(), "shard index out of range");
    return health_[shard].alive;
}

const ShardHealth &
ScaleOutEcssd::health(unsigned shard) const
{
    ECSSD_ASSERT(shard < shards_.size(), "shard index out of range");
    return health_[shard];
}

unsigned
ScaleOutEcssd::aliveDevices() const
{
    unsigned alive = 0;
    for (const ShardHealth &health : health_)
        alive += health.alive ? 1 : 0;
    return alive;
}

ssdsim::HealthReport
ScaleOutEcssd::shardHealthReport(unsigned shard) const
{
    ECSSD_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->health(health_[shard].serviceTime);
}

EcssdSystem &
ScaleOutEcssd::shardSystem(unsigned shard)
{
    ECSSD_ASSERT(shard < shards_.size(), "shard index out of range");
    return *shards_[shard];
}

sim::Tick
ScaleOutEcssd::drainShard(unsigned shard)
{
    // Rebuild the shard on a spare device: same partition, same
    // per-shard options (including the trace seed, so the workload
    // stays identical), zero accumulated wear.  The scheduled
    // failure modeled the *wearing* device dying, so the replacement
    // cancels it.
    EcssdOptions shard_options = options_;
    shard_options.seed = options_.seed + shard;
    shard_options.threads = 1;
    shards_[shard] = std::make_unique<EcssdSystem>(shardSpec_,
                                                   shard_options);
    // The spare deploys whatever version the fleet currently serves.
    shards_[shard]->setDeployVersion(fleetEpoch_, fleetVersion_);
    ShardHealth &health = health_[shard];
    health.alive = true;
    health.failAfterBatches = std::numeric_limits<unsigned>::max();
    health.serviceTime = 0;
    ++health.replacements;
    --spares_;
    return shards_[shard]->deployTimeEstimate();
}

FleetRedeployResult
ScaleOutEcssd::rollingRedeploy(const RedeployConfig &config)
{
    config.validate();
    FleetRedeployResult result;
    result.weightVersion = fleetVersion_ + 1;

    // Each shard re-stages the same partition footprint; under the
    // IO budget the background copy is stretched by 1/budget over
    // the stop-the-world deploy time.
    const sim::Tick full_time =
        estimateDeployTime(shardSpec_, options_.ssd);
    const sim::Tick per_shard = static_cast<sim::Tick>(
        static_cast<double>(full_time) / config.ioBudgetFraction);

    std::vector<unsigned> swapped;
    for (unsigned d = 0; d < devices(); ++d) {
        if (!health_[d].alive) {
            // A dead shard cannot stage; the spare that eventually
            // replaces it deploys the then-current fleet version.
            ++result.shardsSkipped;
            continue;
        }
        if (shards_[d]->ssd().ftl().readOnly()) {
            // Shard lost mid-roll: revert every shard already
            // swapped so the fleet never serves a mixed deployment.
            sim::warn("shard ", d, " read-only during rolling "
                      "redeploy; reverting ", swapped.size(),
                      " swapped shards");
            for (const unsigned s : swapped)
                shards_[s]->setDeployVersion(fleetEpoch_,
                                             fleetVersion_);
            result.shardsSwapped = 0;
            result.rolledBack = true;
            result.reason = RollbackReason::ShardLoss;
            ++fleetRedeployRollbacks_;
            return result;
        }
        // One shard at a time: its staging completes (and ages its
        // service clock) before the roll moves on.
        result.stagingTime += per_shard;
        health_[d].serviceTime += per_shard;
        shards_[d]->setDeployVersion(fleetEpoch_ + 1,
                                     fleetVersion_ + 1);
        swapped.push_back(d);
        ++result.shardsSwapped;
    }
    if (result.shardsSwapped == 0) {
        // Nothing live to swap: the roll never took effect.
        result.rolledBack = true;
        result.reason = RollbackReason::ShardLoss;
        ++fleetRedeployRollbacks_;
        return result;
    }
    ++fleetEpoch_;
    ++fleetVersion_;
    ++fleetRedeployCommits_;
    return result;
}

ScaleOutResult
ScaleOutEcssd::runInference(unsigned batches)
{
    ScaleOutResult result;

    // Proactive drain: consult every live shard's SMART report
    // before committing the run to it.  A shard the policy flags is
    // re-replicated onto a spare *now*, while its data is still
    // readable — the whole point of acting on health telemetry
    // instead of waiting for the reactive failover below.
    if (drainPolicy_.enabled()) {
        for (unsigned d = 0; d < devices(); ++d) {
            if (!health_[d].alive)
                continue;
            if (spares_ == 0)
                break;
            const ssdsim::HealthReport report = shardHealthReport(d);
            if (!drainPolicy_.shouldDrain(report))
                continue;
            sim::warn("shard ", d, " degrading (life ",
                      report.lifeRemaining, ", predicted error rate ",
                      report.predictedErrorRate,
                      "); draining onto a spare");
            result.reReplicationTime += drainShard(d);
            ++result.drainedShards;
        }
    }

    // Phase 1 — fan out: every shard with a batch quota simulates
    // concurrently on the fleet pool.  Each shard touches only its
    // own EcssdSystem and its own slot of runs/energies, so any
    // execution interleaving yields the same per-shard results.
    std::vector<unsigned> quotas(devices(), 0);
    for (unsigned d = 0; d < devices(); ++d) {
        quotas[d] = health_[d].alive
            ? std::min(batches, health_[d].failAfterBatches)
            : 0;
    }
    std::vector<accel::RunResult> runs(devices());
    std::vector<double> energies(devices(), 0.0);
    pool_->parallelFor(
        0, devices(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t d = begin; d < end; ++d) {
                if (quotas[d] == 0)
                    continue;
                runs[d] = shards_[d]->runInference(quotas[d]);
                energies[d] = shards_[d]
                                  ->estimateRunEnergy(runs[d])
                                  .totalUj();
            }
        });

    // Phase 2 — merge in fixed shard-index order: health mutation,
    // energy accumulation, and the slowest-shard reduction happen
    // serially, so the merged result is bit-identical to the
    // serial fleet's.
    sim::Tick slowest = 0;
    std::uint64_t served_shard_batches = 0;
    std::uint64_t lost_shard_batches = 0;
    for (unsigned d = 0; d < devices(); ++d) {
        ShardHealth &health = health_[d];
        const unsigned quota = quotas[d];
        accel::RunResult run = std::move(runs[d]);
        if (quota > 0) {
            slowest = std::max(slowest, run.totalTime);
            result.totalEnergyUj += energies[d];
        }
        if (quota < batches && health.alive) {
            health.alive = false;
            sim::warn("shard ", d, " failed after ", quota,
                      " of ", batches, " batches; merging over "
                      "survivors");
        }
        if (health.failAfterBatches
            != std::numeric_limits<unsigned>::max())
            health.failAfterBatches -= quota;
        health.batchesServed += quota;
        health.serviceTime += run.totalTime;
        served_shard_batches += quota;
        lost_shard_batches += batches - quota;
        result.shards.push_back(std::move(run));
    }
    if (served_shard_batches == 0)
        sim::fatal("scale-out run with no surviving shards: every "
                   "device failed before serving a batch");

    result.survivingDevices = aliveDevices();
    result.failedDevices = devices() - result.survivingDevices;
    result.sparesRemaining = spares_;

    // A dead shard's categories never reach the merge; under a
    // uniform true-label distribution each lost shard-batch forfeits
    // its share of the category space.
    const double shard_share =
        static_cast<double>(shardSpec_.categories)
        / static_cast<double>(fullSpec_.categories);
    result.recallLossEstimate = std::min(
        1.0,
        static_cast<double>(lost_shard_batches) * shard_share
            / std::max(1u, batches));

    // Devices run concurrently; the host-side top-k merge of
    // per-shard results is a trivial K-way merge over the PCIe
    // fabric, modeled as a small fixed cost per shard-batch that
    // actually produced results.
    const sim::Tick merge =
        sim::microseconds(5.0) * served_shard_batches;
    result.totalTime = slowest + merge;
    result.meanBatchMs = sim::tickToMs(result.totalTime)
        / std::max(1u, batches);
    return result;
}

void
RoutingConfig::validate() const
{
    if (replicasPerShard == 0)
        sim::fatal("RoutingConfig: replicasPerShard must be >= 1");
}

RoutedServeResult
ScaleOutEcssd::serveRouted(const std::vector<sim::Tick> &arrivals,
                           const RoutingConfig &routing)
{
    routing.validate();
    RoutedServeResult result;
    if (arrivals.empty())
        return result;

    // Calibration probe: one real batch per live shard pins the
    // per-shard service time the router schedules with (and ages the
    // shard accordingly — the probe is served work).  The routed run
    // itself is a scheduling model over those times: replicas of a
    // shard serve the same partition at the same speed.
    std::vector<sim::Tick> service(devices(), 0);
    unsigned live = 0;
    for (unsigned d = 0; d < devices(); ++d) {
        if (!health_[d].alive)
            continue;
        const accel::RunResult probe = shards_[d]->runInference(1);
        service[d] = std::max<sim::Tick>(probe.totalTime, 1);
        health_[d].batchesServed += 1;
        health_[d].serviceTime += probe.totalTime;
        ++live;
    }
    if (live == 0)
        sim::fatal("serveRouted: every shard is dead; nothing can "
                   "serve the partition");

    const unsigned replicas = routing.replicasPerShard;
    // busyUntil clock per (shard, replica): the router's whole view
    // of backlog.  Dead shards keep zeroed slots that are never
    // consulted.
    std::vector<sim::Tick> busy(
        static_cast<std::size_t>(devices()) * replicas, 0);
    const sim::Tick merge = sim::microseconds(5.0) * live;

    double latency_sum_ms = 0.0;
    sim::Tick previous_arrival = 0;
    for (const sim::Tick arrival : arrivals) {
        ECSSD_ASSERT(arrival >= previous_arrival,
                     "serveRouted arrivals must be non-decreasing");
        previous_arrival = arrival;
        sim::Tick completion = 0;
        for (unsigned d = 0; d < devices(); ++d) {
            if (!health_[d].alive)
                continue;
            // Queue-depth-aware routing: least-busy replica wins,
            // lowest index on ties, so the schedule is a pure
            // function of the arrival stream.
            const std::size_t base =
                static_cast<std::size_t>(d) * replicas;
            unsigned primary = 0;
            for (unsigned r = 1; r < replicas; ++r) {
                if (busy[base + r] < busy[base + primary])
                    primary = r;
            }
            const sim::Tick backlog_tick =
                busy[base + primary] > arrival
                    ? busy[base + primary] - arrival
                    : 0;
            const std::uint64_t backlog =
                (backlog_tick + service[d] - 1) / service[d];
            result.maxReplicaBacklog =
                std::max(result.maxReplicaBacklog, backlog);
            const sim::Tick start =
                std::max(arrival, busy[base + primary]);
            sim::Tick done = start + service[d];
            busy[base + primary] = done;
            ++result.subRequests;

            // Deadline-triggered hedge: the expected completion is
            // known at dispatch (the schedule is deterministic), so
            // the duplicate launches immediately on the
            // next-least-busy replica; first response wins and the
            // loser's work is the capacity price of the tail cut.
            if (routing.hedgeDelay != 0 && replicas > 1
                && done > arrival + routing.hedgeDelay) {
                unsigned hedge = primary == 0 ? 1 : 0;
                for (unsigned r = 0; r < replicas; ++r) {
                    if (r == primary)
                        continue;
                    if (busy[base + r] < busy[base + hedge])
                        hedge = r;
                }
                const sim::Tick hedge_start =
                    std::max(arrival, busy[base + hedge]);
                const sim::Tick hedge_done =
                    hedge_start + service[d];
                busy[base + hedge] = hedge_done;
                ++result.hedgesIssued;
                ++result.subRequests;
                if (hedge_done < done) {
                    ++result.hedgeWins;
                    done = hedge_done;
                }
            }
            completion = std::max(completion, done);
        }
        completion += merge;
        ++result.requests;
        result.makespan = std::max(result.makespan, completion);
        const double ms = sim::tickToMs(completion - arrival);
        latency_sum_ms += ms;
        result.latencyMs.sample(ms);
    }
    result.meanLatencyMs =
        latency_sum_ms / static_cast<double>(result.requests);
    return result;
}

void
ScaleOutEcssd::publishRoutedMetrics(
    sim::MetricsRegistry &registry,
    const RoutedServeResult &result) const
{
    registry.gaugeSet("fleet.routed.requests",
                      static_cast<double>(result.requests));
    registry.gaugeSet("fleet.routed.sub_requests",
                      static_cast<double>(result.subRequests));
    registry.gaugeSet("fleet.routed.hedges_issued",
                      static_cast<double>(result.hedgesIssued));
    registry.gaugeSet("fleet.routed.hedge_wins",
                      static_cast<double>(result.hedgeWins));
    registry.gaugeSet("fleet.routed.makespan_ms",
                      sim::tickToMs(result.makespan));
    registry.gaugeSet("fleet.routed.mean_latency_ms",
                      result.meanLatencyMs);
    registry.gaugeSet("fleet.routed.p50_latency_ms",
                      result.latencyMs.p50());
    registry.gaugeSet("fleet.routed.p99_latency_ms",
                      result.latencyMs.p99());
    registry.gaugeSet(
        "fleet.routed.max_replica_backlog",
        static_cast<double>(result.maxReplicaBacklog));
}

void
ScaleOutEcssd::publishMetrics(sim::MetricsRegistry &registry,
                              const ScaleOutResult &result) const
{
    sim::Tick fastest = 0;
    sim::Tick slowest = 0;
    bool first = true;
    for (unsigned d = 0; d < devices(); ++d) {
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "fleet.shard%02u.", d);
        const ShardHealth &health = health_[d];
        registry.gaugeSet(std::string(prefix) + "alive",
                          health.alive ? 1.0 : 0.0);
        registry.gaugeSet(
            std::string(prefix) + "batches_served",
            static_cast<double>(health.batchesServed));
        registry.gaugeSet(std::string(prefix) + "service_time_ms",
                          sim::tickToMs(health.serviceTime));
        registry.gaugeSet(
            std::string(prefix) + "replacements",
            static_cast<double>(health.replacements));
        if (d < result.shards.size()) {
            const sim::Tick shard_time = result.shards[d].totalTime;
            registry.gaugeSet(std::string(prefix) + "run_time_ms",
                              sim::tickToMs(shard_time));
            if (shard_time > 0) {
                fastest =
                    first ? shard_time : std::min(fastest, shard_time);
                slowest = std::max(slowest, shard_time);
                first = false;
            }
        }
    }
    // Load skew across the shards that actually served: the paper's
    // balanced interleaving should keep this near zero.
    registry.gaugeSet("fleet.time_skew",
                      slowest == 0
                          ? 0.0
                          : static_cast<double>(slowest - fastest)
                              / static_cast<double>(slowest));
    registry.gaugeSet("fleet.devices",
                      static_cast<double>(devices()));
    registry.gaugeSet(
        "fleet.surviving_devices",
        static_cast<double>(result.survivingDevices));
    registry.gaugeSet("fleet.failed_devices",
                      static_cast<double>(result.failedDevices));
    registry.gaugeSet("fleet.drained_shards",
                      static_cast<double>(result.drainedShards));
    registry.gaugeSet("fleet.spares_remaining",
                      static_cast<double>(result.sparesRemaining));
    registry.gaugeSet("fleet.total_time_ms",
                      sim::tickToMs(result.totalTime));
    registry.gaugeSet("fleet.recall_loss_estimate",
                      result.recallLossEstimate);
    registry.gaugeSet("fleet.deploy_epoch",
                      static_cast<double>(fleetEpoch_));
    registry.gaugeSet("fleet.weight_version",
                      static_cast<double>(fleetVersion_));
    registry.gaugeSet(
        "fleet.redeploy_commits",
        static_cast<double>(fleetRedeployCommits_));
    registry.gaugeSet(
        "fleet.redeploy_rollbacks",
        static_cast<double>(fleetRedeployRollbacks_));
}

} // namespace ecssd
