/**
 * @file
 * Scale-out ECSSD (Section 7.1): a classification layer too large
 * for one device's DRAM is partitioned row-wise across several
 * ECSSDs that execute in parallel; the host merges per-device top-k
 * results.
 */

#ifndef ECSSD_ECSSD_SCALE_OUT_HH
#define ECSSD_ECSSD_SCALE_OUT_HH

#include <memory>
#include <vector>

#include "ecssd/system.hh"

namespace ecssd
{

/** Outcome of one scale-out inference run. */
struct ScaleOutResult
{
    /** Per-device run results, in partition order. */
    std::vector<accel::RunResult> shards;
    /** Wall-clock time: max over devices plus the host merge. */
    sim::Tick totalTime = 0;
    /** Mean batch latency across the run, milliseconds. */
    double meanBatchMs = 0.0;
    /** Total energy over all devices, microjoules. */
    double totalEnergyUj = 0.0;
};

/**
 * A row-partitioned fleet of ECSSDs serving one huge classification
 * layer.
 */
class ScaleOutEcssd
{
  public:
    /**
     * Partition @p spec across @p devices ECSSDs.
     *
     * @param spec The full classification layer.
     * @param devices Device count; each shard must fit its DRAM.
     * @param options Per-device configuration.
     */
    ScaleOutEcssd(const xclass::BenchmarkSpec &spec, unsigned devices,
                  const EcssdOptions &options = EcssdOptions::full());

    unsigned devices() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** The shard specs (row ranges are implicit and equal-sized). */
    const xclass::BenchmarkSpec &shardSpec() const
    {
        return shardSpec_;
    }

    /**
     * Minimum device count for @p spec given a per-device DRAM
     * capacity and the ~80% fill target the paper plans with.
     */
    static unsigned devicesNeeded(const xclass::BenchmarkSpec &spec,
                                  std::uint64_t dram_bytes);

    /**
     * Run @p batches batches on every shard in parallel and merge.
     */
    ScaleOutResult runInference(unsigned batches);

  private:
    xclass::BenchmarkSpec fullSpec_;
    xclass::BenchmarkSpec shardSpec_;
    std::vector<std::unique_ptr<EcssdSystem>> shards_;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SCALE_OUT_HH
