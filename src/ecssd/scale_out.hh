/**
 * @file
 * Scale-out ECSSD (Section 7.1): a classification layer too large
 * for one device's DRAM is partitioned row-wise across several
 * ECSSDs that execute in parallel; the host merges per-device top-k
 * results.
 *
 * Fleet fault tolerance: a device can be marked failed (immediately
 * or after a number of batches, modeling a mid-run loss), the fleet
 * tracks per-shard health, and the merge proceeds over the surviving
 * shards.  Because the partition is row-wise, losing a shard loses
 * exactly its category range: the merged top-k stays correct for
 * every surviving category, and ScaleOutResult carries the expected
 * recall loss.
 */

#ifndef ECSSD_ECSSD_SCALE_OUT_HH
#define ECSSD_ECSSD_SCALE_OUT_HH

#include <limits>
#include <memory>
#include <vector>

#include "ecssd/redeploy.hh"
#include "ecssd/system.hh"
#include "sim/stats.hh"

namespace ecssd
{

/** Liveness and service record of one fleet shard. */
struct ShardHealth
{
    /** False once the device failed (injected or scheduled). */
    bool alive = true;
    /** Batches this shard completed across all runs. */
    std::uint64_t batchesServed = 0;
    /** Batches remaining before a scheduled failure triggers;
     *  max() means no failure is scheduled. */
    unsigned failAfterBatches =
        std::numeric_limits<unsigned>::max();
    /** Cumulative device time this shard has served (the lifetime
     *  clock its retention ages are measured against). */
    sim::Tick serviceTime = 0;
    /** Times this shard was proactively drained onto a spare. */
    std::uint64_t replacements = 0;
};

/**
 * When to proactively drain a shard onto a spare device.
 *
 * Disabled by default (both thresholds off), so a fleet without a
 * policy behaves exactly as the reactive-failover fleet did.
 */
struct DrainPolicy
{
    /** Drain when the shard's SMART lifeRemaining falls to or below
     *  this fraction; 0 disables the life trigger. */
    double lifeThreshold = 0.0;
    /** Drain when the shard's predicted media-error rate reaches
     *  this probability; 0 disables the error-rate trigger. */
    double errorRateThreshold = 0.0;

    bool
    enabled() const
    {
        return lifeThreshold > 0.0 || errorRateThreshold > 0.0;
    }

    /** True when @p report trips either trigger. */
    bool
    shouldDrain(const ssdsim::HealthReport &report) const
    {
        if (lifeThreshold > 0.0
            && report.lifeRemaining <= lifeThreshold)
            return true;
        if (errorRateThreshold > 0.0
            && report.predictedErrorRate >= errorRateThreshold)
            return true;
        return false;
    }
};

/** Outcome of one scale-out inference run. */
struct ScaleOutResult
{
    /** Per-device run results, in partition order (a shard that was
     *  dead for the whole run contributes an empty result). */
    std::vector<accel::RunResult> shards;
    /** Wall-clock time: max over devices plus the host merge. */
    sim::Tick totalTime = 0;
    /** Mean batch latency across the run, milliseconds. */
    double meanBatchMs = 0.0;
    /** Total energy over all devices, microjoules. */
    double totalEnergyUj = 0.0;
    /** Shards still alive after the run. */
    unsigned survivingDevices = 0;
    /** Shards dead by the end of the run. */
    unsigned failedDevices = 0;
    /** Shards proactively drained onto spares before this run's
     *  batches were served. */
    unsigned drainedShards = 0;
    /** Provisioned spare devices left after the run. */
    unsigned sparesRemaining = 0;
    /** Time spent re-replicating drained shards onto spares.  The
     *  copy streams in the background while the old device keeps
     *  serving, so it is reported but not added to totalTime. */
    sim::Tick reReplicationTime = 0;
    /**
     * Expected fraction of true top-k answers lost to dead shards,
     * averaged over the run's batches: a dead shard's category range
     * simply does not compete in the merge, so under a uniform true
     * label distribution each dead-shard batch loses its share of
     * the categories.
     */
    double recallLossEstimate = 0.0;
};

/**
 * Replica and tail-latency policy of the routed serving front-end
 * (serveRouted).  A request fans out to every shard (the partition
 * is row-wise, so every shard must score its category range); within
 * a shard the router balances reads across replicas by backlog and
 * hedges sub-requests whose expected completion runs late.
 */
struct RoutingConfig
{
    /** Read replicas per shard (>= 1).  Replicas serve the same row
     *  partition, so a hot shard is served from more than one
     *  device; reads balance across them by backlog. */
    unsigned replicasPerShard = 1;
    /**
     * Deadline-triggered hedging: when a sub-request's expected
     * completion (on its least-busy replica) exceeds its arrival by
     * more than this, a duplicate is issued to the next-least-busy
     * replica and the first response wins — the straggler's work is
     * wasted capacity, which is the standard hedging trade.  0
     * disables hedging; so does a single replica (nowhere to hedge).
     */
    sim::Tick hedgeDelay = 0;

    /** Die fatally (sim::FatalError) on an inconsistent config. */
    void validate() const;
};

/** Outcome of one routed open-loop serving run. */
struct RoutedServeResult
{
    /** Requests served (one per arrival). */
    std::uint64_t requests = 0;
    /** Sub-requests executed across shards and replicas, hedges
     *  included. */
    std::uint64_t subRequests = 0;
    /** Hedged duplicates issued. */
    std::uint64_t hedgesIssued = 0;
    /** Hedges whose response beat the primary replica's. */
    std::uint64_t hedgeWins = 0;
    /** Completion time of the last request. */
    sim::Tick makespan = 0;
    /** End-to-end request latency quantiles, milliseconds. */
    sim::Percentiles latencyMs;
    double meanLatencyMs = 0.0;
    /** Peak backlog (queued sub-requests) of any single replica —
     *  the balance measure replica routing is supposed to keep
     *  low. */
    std::uint64_t maxReplicaBacklog = 0;
};

/** Outcome of one rolling fleet weight redeploy. */
struct FleetRedeployResult
{
    /** Shards whose deploy epoch flipped to the new version. */
    unsigned shardsSwapped = 0;
    /** Dead shards the roll passed over (they pick the new version
     *  up when a spare replaces them). */
    unsigned shardsSkipped = 0;
    /** Background staging time summed over the swapped shards (each
     *  shard stages serially, one at a time, under the IO budget). */
    sim::Tick stagingTime = 0;
    /** The fleet-wide weight version this roll targeted. */
    std::uint64_t weightVersion = 0;
    /** True when the roll aborted and every already-swapped shard
     *  reverted to the old version. */
    bool rolledBack = false;
    RollbackReason reason = RollbackReason::None;
};

/**
 * A row-partitioned fleet of ECSSDs serving one huge classification
 * layer.
 */
class ScaleOutEcssd
{
  public:
    /**
     * Partition @p spec across @p devices ECSSDs.
     *
     * @param spec The full classification layer.
     * @param devices Device count; each shard must fit its DRAM.
     * @param options Per-device configuration.
     */
    ScaleOutEcssd(const xclass::BenchmarkSpec &spec, unsigned devices,
                  const EcssdOptions &options = EcssdOptions::full());

    unsigned devices() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** The shard specs (row ranges are implicit and equal-sized). */
    const xclass::BenchmarkSpec &shardSpec() const
    {
        return shardSpec_;
    }

    /**
     * Minimum device count for @p spec given a per-device DRAM
     * capacity and the ~80% fill target the paper plans with.
     *
     * Fatal when @p dram_bytes leaves no usable weight capacity (a
     * zero-DRAM device can never hold a shard).
     */
    static unsigned devicesNeeded(const xclass::BenchmarkSpec &spec,
                                  std::uint64_t dram_bytes);

    // --- Fault injection / health ---------------------------------
    /** Mark @p shard failed immediately: it serves no further
     *  batches. */
    void failShard(unsigned shard);

    /** Schedule @p shard to fail after serving @p batches more
     *  batches (0 = immediately), modeling a mid-run device loss. */
    void failShardAfterBatches(unsigned shard, unsigned batches);

    /** Liveness of one shard. */
    bool shardAlive(unsigned shard) const;

    /** Health record of one shard. */
    const ShardHealth &health(unsigned shard) const;

    /** Currently-alive device count. */
    unsigned aliveDevices() const;

    // --- Proactive drain ------------------------------------------
    /** Provision @p count spare devices the drain can re-replicate
     *  degrading shards onto. */
    void provisionSpares(unsigned count) { spares_ += count; }

    /** Spare devices not yet consumed. */
    unsigned sparesAvailable() const { return spares_; }

    /** Install the proactive-drain policy (see DrainPolicy). */
    void setDrainPolicy(const DrainPolicy &policy)
    {
        drainPolicy_ = policy;
    }

    /** SMART report of @p shard at its cumulative service time. */
    ssdsim::HealthReport shardHealthReport(unsigned shard) const;

    /** Direct access to one shard's system (fault injection). */
    EcssdSystem &shardSystem(unsigned shard);

    // --- Rolling weight redeploy ----------------------------------

    /**
     * Hot-swap the fleet to a new weight version, one shard at a
     * time: each live shard stages the new layout in the background
     * under @p config's IO budget and flips its deploy epoch before
     * the roll moves to the next shard, so at most one shard is ever
     * mid-swap and the merged top-k keeps serving throughout.  Dead
     * shards are skipped (a spare replacing them deploys the current
     * version).  A shard found read-only mid-roll aborts the roll:
     * every already-swapped shard reverts to the old version
     * (RollbackReason::ShardLoss) so the fleet never serves a mixed
     * deployment.
     */
    FleetRedeployResult rollingRedeploy(
        const RedeployConfig &config = RedeployConfig{});

    /** Fleet-wide deploy epoch (bumped per completed roll). */
    std::uint64_t deployEpoch() const { return fleetEpoch_; }

    /** Fleet-wide weight version currently deployed. */
    std::uint64_t weightVersion() const { return fleetVersion_; }

    /**
     * Run @p batches batches on every live shard in parallel and
     * merge over the survivors.  A shard whose scheduled failure
     * triggers mid-run stops after its remaining quota; the merge
     * then proceeds without it and the result reports the estimated
     * recall loss.  Fatal when no shard serves any batch.
     */
    ScaleOutResult runInference(unsigned batches);

    /**
     * Serve an open-loop arrival stream through the routed
     * front-end: every arrival fans out one sub-request per shard,
     * the router picks the least-backlogged replica (lowest index on
     * ties, so the schedule is deterministic), and late sub-requests
     * are hedged per @p routing.  The request completes when its
     * slowest shard answers plus the host merge; per-shard service
     * time comes from a one-batch calibration probe against the live
     * device at the start of the run.
     *
     * @param arrivals Non-decreasing request arrival times.
     * @param routing Replica/hedging policy.
     */
    RoutedServeResult serveRouted(
        const std::vector<sim::Tick> &arrivals,
        const RoutingConfig &routing = RoutingConfig{});

    /** Snapshot one routed run as "fleet.routed.*" gauges. */
    void publishRoutedMetrics(sim::MetricsRegistry &registry,
                              const RoutedServeResult &result) const;

    /**
     * Snapshot fleet state and the per-shard outcome of @p result
     * into @p registry as gauges: "fleet.shard00.*" per-shard
     * time/batches/liveness plus fleet-wide aggregates, including
     * the load-skew gauge fleet.time_skew ((max-min)/max over the
     * shard run times — 0 is a perfectly balanced fleet).
     */
    void publishMetrics(sim::MetricsRegistry &registry,
                        const ScaleOutResult &result) const;

  private:
    /** Replace @p shard's device with a freshly-deployed spare.
     *  @return The re-replication (deployment) time. */
    sim::Tick drainShard(unsigned shard);

    xclass::BenchmarkSpec fullSpec_;
    xclass::BenchmarkSpec shardSpec_;
    EcssdOptions options_;
    /** Fleet fan-out pool (options.threads workers): live shards
     *  simulate concurrently, results merge in shard-index order so
     *  the outcome is bit-identical to the serial fleet. */
    std::unique_ptr<sim::ThreadPool> pool_;
    std::vector<std::unique_ptr<EcssdSystem>> shards_;
    std::vector<ShardHealth> health_;
    DrainPolicy drainPolicy_;
    unsigned spares_ = 0;
    /** Fleet-wide serving identity (every shard reports it). */
    std::uint64_t fleetEpoch_ = 1;
    std::uint64_t fleetVersion_ = 1;
    /** Lifetime rolling-redeploy outcome counts. */
    std::uint64_t fleetRedeployCommits_ = 0;
    std::uint64_t fleetRedeployRollbacks_ = 0;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SCALE_OUT_HH
