#include "server.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "numeric/kernels.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{

const char *
toString(BrownoutLevel level)
{
    switch (level) {
    case BrownoutLevel::Full:
        return "full";
    case BrownoutLevel::ReducedCandidates:
        return "reduced-candidates";
    case BrownoutLevel::ScreenerOnly:
        return "screener-only";
    case BrownoutLevel::Shed:
        return "shed";
    }
    return "unknown";
}

void
BrownoutConfig::validate() const
{
    if (!enabled())
        return;
    if (exitDelay > enterDelay)
        sim::fatal("BrownoutConfig: exitDelay (", exitDelay,
                   ") must not exceed enterDelay (", enterDelay,
                   "); the hysteresis band would be negative");
    if (reducedCandidateFraction <= 0.0
        || reducedCandidateFraction > 1.0)
        sim::fatal("BrownoutConfig: reducedCandidateFraction must "
                   "be in (0, 1], got ",
                   reducedCandidateFraction);
}

void
ServerConfig::validate() const
{
    if (goldAdmissionMultiplier < 1.0)
        sim::fatal("ServerConfig: goldAdmissionMultiplier must be "
                   ">= 1, got ",
                   goldAdmissionMultiplier);
    if (retryJitterFraction < 0.0 || retryJitterFraction > 1.0)
        sim::fatal("ServerConfig: retryJitterFraction must be in "
                   "[0, 1], got ",
                   retryJitterFraction);
    brownout.validate();
}

namespace
{

/** Apply the host-ISA request before any functional model (the
 *  classifier's screener) captures its kernel plan. */
const EcssdOptions &
withIsaApplied(const EcssdOptions &options)
{
    numeric::applyIsaRequest(options.isa);
    return options;
}

} // namespace

InferenceServer::InferenceServer(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
    const numeric::FloatMatrix *trained_projection,
    const ServerConfig &server_config)
    : weights_(&weights), spec_(spec),
      options_(withIsaApplied(options)),
      config_(server_config),
      threadPool_(
          std::make_unique<sim::ThreadPool>(options.threads)),
      classifier_(std::make_unique<xclass::ApproximateClassifier>(
          weights, spec, options.seed, trained_projection,
          threadPool_.get())),
      system_(std::make_unique<EcssdSystem>(spec, options)),
      retryJitterRng_(server_config.retryJitterSeed)
{
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");
    config_.validate();
    system_->setDeployVersion(deployEpoch_, weightVersion_);
}

void
InferenceServer::attachObservability(sim::MetricsRegistry *metrics,
                                     sim::SpanTracer *spans)
{
    metrics_ = metrics;
    spans_ = spans;
    system_->attachObservability(metrics, spans);
    if (swap_)
        swap_->machine.attachObservability(metrics, spans);
}

void
InferenceServer::publishMetrics(sim::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, std::uint64_t value) {
        registry.gaugeSet(std::string("server.") + name,
                          static_cast<double>(value));
    };
    gauge("accepted_requests", stats_.acceptedRequests);
    gauge("shed_requests", stats_.shedRequests);
    gauge("timed_out_requests", stats_.timedOutRequests);
    gauge("dropped_before_service", stats_.droppedBeforeService);
    gauge("degraded_responses", stats_.degradedResponses);
    gauge("ok_responses", stats_.okResponses);
    gauge("batch_retries", stats_.batchRetries);
    gauge("exhausted_batches", stats_.exhaustedBatches);
    gauge("degraded_rows", stats_.degradedRows);
    gauge("queue_depth_hwm", stats_.queueDepthHwm);
    if (config_.admissionTargetDelay != 0
        || config_.brownout.enabled()) {
        // Overload-control gauges appear only when the stack is
        // configured, so legacy metric dumps stay byte-identical.
        gauge("shed_gold", stats_.shedGold);
        gauge("shed_best_effort", stats_.shedBestEffort);
        gauge("admission_sheds", stats_.admissionSheds);
        gauge("brownout_sheds", stats_.brownoutSheds);
        gauge("evicted_best_effort", stats_.evictedBestEffort);
        gauge("brownout_transitions", stats_.brownoutTransitions);
        gauge("served_full", stats_.servedFull);
        gauge("served_reduced_candidates",
              stats_.servedReducedCandidates);
        gauge("served_screener_only", stats_.servedScreenerOnly);
        registry.gaugeSet("server.brownout_level",
                          static_cast<double>(level_));
        registry.gaugeSet(
            "server.brownout_dwell_full_ms",
            sim::tickToMs(brownoutDwell(BrownoutLevel::Full)));
        registry.gaugeSet(
            "server.brownout_dwell_reduced_ms",
            sim::tickToMs(
                brownoutDwell(BrownoutLevel::ReducedCandidates)));
        registry.gaugeSet(
            "server.brownout_dwell_screener_ms",
            sim::tickToMs(
                brownoutDwell(BrownoutLevel::ScreenerOnly)));
        registry.gaugeSet(
            "server.brownout_dwell_shed_ms",
            sim::tickToMs(brownoutDwell(BrownoutLevel::Shed)));
    }
    registry.gaugeSet("server.device_time_ms",
                      sim::tickToMs(deviceClock_));
    gauge("deploy_epoch", deployEpoch_);
    gauge("weight_version", weightVersion_);
    if (swap_ || redeployCommits_ > 0 || redeployRollbacks_ > 0) {
        gauge("redeploy_commits", redeployCommits_);
        gauge("redeploy_rollbacks", redeployRollbacks_);
        if (swap_) {
            registry.gaugeSet(
                "server.redeploy_staged_bytes",
                static_cast<double>(swap_->ledger.stagedBytes()));
            registry.gaugeSet("server.redeploy_staging_ms",
                              sim::tickToMs(swap_->ledger.elapsed()));
            registry.gaugeSet("server.redeploy_validation_recall",
                              swap_->recall);
        }
    }
}

void
InferenceServer::recordResponse(Response::Status status,
                                double latency_ms)
{
    if (!metrics_)
        return;
    switch (status) {
    case Response::Status::Ok:
        metrics_->counterAdd("server.responses_ok");
        break;
    case Response::Status::Degraded:
        metrics_->counterAdd("server.responses_degraded");
        break;
    case Response::Status::TimedOut:
        metrics_->counterAdd("server.responses_timed_out");
        break;
    case Response::Status::Shed:
        metrics_->counterAdd("server.responses_shed");
        break;
    default:
        // The server only emits the four terminal outcomes above;
        // the rest of the unified Status vocabulary is API-side.
        break;
    }
    if (latency_ms >= 0.0) {
        metrics_->histogramSample("server.latency_ms", 0.0, 500.0,
                                  1000, latency_ms);
    }
}

InferenceServer::RequestId
InferenceServer::enqueue(std::vector<float> feature)
{
    return enqueueAt(std::move(feature), deviceClock_);
}

void
InferenceServer::shedRequest(RequestId id, sim::Tick arrival,
                             sim::RequestClass cls)
{
    ++stats_.shedRequests;
    if (cls == sim::RequestClass::Gold)
        ++stats_.shedGold;
    else
        ++stats_.shedBestEffort;
    recordResponse(Response::Status::Shed, -1.0);
    Response response{id, {}, arrival, Response::Status::Shed};
    response.cls = cls;
    unservedResponses_.push_back(std::move(response));
}

bool
InferenceServer::evictYoungestBestEffort()
{
    for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
        if (it->cls != sim::RequestClass::BestEffort)
            continue;
        // The youngest BestEffort pays for the Gold arrival: it has
        // waited least and its loss never inverts FIFO fairness
        // within its own class.
        ++stats_.evictedBestEffort;
        shedRequest(it->id, it->enqueuedAt,
                    sim::RequestClass::BestEffort);
        --stats_.acceptedRequests;
        pending_.erase(std::next(it).base());
        return true;
    }
    return false;
}

InferenceServer::RequestId
InferenceServer::enqueueAt(std::vector<float> feature,
                           sim::Tick arrival, sim::RequestClass cls)
{
    ECSSD_ASSERT(feature.size() == spec_.hiddenDim,
                 "feature dimension mismatch");
    const RequestId id = nextId_++;

    // Brownout Shed rung: new BestEffort arrivals (and Gold only if
    // its floor allows it) are rejected outright while the ladder is
    // at the bottom.
    if (config_.brownout.enabled() && level_ == BrownoutLevel::Shed
        && (cls == sim::RequestClass::BestEffort
            || config_.brownout.goldFloor == BrownoutLevel::Shed)) {
        ++stats_.brownoutSheds;
        if (metrics_)
            metrics_->counterAdd("server.brownout_sheds");
        shedRequest(id, arrival, cls);
        return id;
    }

    // Queue-delay admission (CoDel-flavored): bound the *sojourn* a
    // new arrival would suffer, not just the queue length.  The
    // estimate is queue depth times the measured per-request service
    // EWMA; Gold gets a deeper bound and may evict queued BestEffort
    // work instead of being rejected.
    if (config_.admissionTargetDelay != 0 && ewmaServiceTick_ != 0) {
        const sim::Tick estimated =
            static_cast<sim::Tick>(pending_.size())
            * ewmaServiceTick_;
        const sim::Tick bound = cls == sim::RequestClass::Gold
            ? static_cast<sim::Tick>(
                  static_cast<double>(config_.admissionTargetDelay)
                  * config_.goldAdmissionMultiplier)
            : config_.admissionTargetDelay;
        if (estimated > bound) {
            if (cls == sim::RequestClass::Gold
                && evictYoungestBestEffort()) {
                // Fall through to admission: the queue just shrank.
            } else {
                ++stats_.admissionSheds;
                if (metrics_)
                    metrics_->counterAdd("server.admission_sheds");
                shedRequest(id, arrival, cls);
                return id;
            }
        }
    }

    if (config_.queueCapacity != 0
        && pending_.size() >= config_.queueCapacity) {
        // Hard bound: shedding at arrival keeps the queue (and
        // therefore worst-case queueing delay) bounded under
        // overload.  A Gold arrival first tries to reclaim a queued
        // BestEffort slot so priority is never inverted at the door.
        if (!(cls == sim::RequestClass::Gold
              && evictYoungestBestEffort())) {
            shedRequest(id, arrival, cls);
            return id;
        }
    }
    ++stats_.acceptedRequests;
    pending_.push_back(
        PendingRequest{id, std::move(feature), arrival, cls});
    if (pending_.size() > stats_.queueDepthHwm) {
        stats_.queueDepthHwm = pending_.size();
        if (metrics_)
            metrics_->gaugeSet(
                "server.queue_depth_hwm",
                static_cast<double>(stats_.queueDepthHwm));
    }
    if (metrics_) {
        metrics_->counterAdd("server.accepted_requests");
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    return id;
}

bool
InferenceServer::expiredBy(const PendingRequest &request,
                           sim::Tick at) const
{
    return config_.requestDeadline != 0
        && at > request.enqueuedAt + config_.requestDeadline;
}

accel::BatchTiming
InferenceServer::timeBatchWithRetries(
    const std::vector<std::uint64_t> &candidates, sim::Tick &backoff)
{
    backoff = 0;
    system_->ssd().resetTimelines();
    accel::BatchTiming timing =
        system_->pipeline().runBatch(candidates, 0);

    // FailBatch aborts retry with exponential backoff; every retry
    // re-reads the flash, so a transient ECC loss usually clears
    // (the fault draws advance with the device's event counter).
    double backoff_us = config_.retryBackoffUs;
    for (unsigned attempt = 0;
         timing.failed && attempt < config_.maxBatchRetries;
         ++attempt) {
        ++stats_.batchRetries;
        if (metrics_)
            metrics_->counterAdd("server.batch_retries");
        // Seeded jitter decorrelates fleet-wide retry storms after a
        // correlated fault; zero fraction draws nothing, so the
        // fixed progression stays bit-identical.
        double scaled = backoff_us;
        if (config_.retryJitterFraction > 0.0) {
            scaled *= 1.0
                + config_.retryJitterFraction
                    * (retryJitterRng_.uniform() - 0.5);
        }
        backoff += sim::microseconds(scaled);
        backoff_us *= 2.0;
        system_->ssd().resetTimelines();
        timing = system_->pipeline().runBatch(candidates, 0);
    }

    if (timing.failed) {
        // Retry budget exhausted: serve the batch degraded (screener
        // scores for the lost rows) rather than dropping it.
        ++stats_.exhaustedBatches;
        if (metrics_)
            metrics_->counterAdd("server.exhausted_batches");
        accel::InferencePipeline &pipeline = system_->pipeline();
        const accel::DegradedReadPolicy saved =
            pipeline.degradedPolicy();
        pipeline.setDegradedPolicy(
            accel::DegradedReadPolicy::ScreenerFallback);
        system_->ssd().resetTimelines();
        timing = pipeline.runBatch(candidates, 0);
        pipeline.setDegradedPolicy(saved);
    }
    return timing;
}

BrownoutLevel
InferenceServer::servingLevelFor(sim::RequestClass cls) const
{
    if (!config_.brownout.enabled())
        return BrownoutLevel::Full;
    // The Shed rung only rejects at admission; anything already in
    // the queue is served at the cheapest rung.  That keeps the
    // service rate at the bottom of the ladder at its maximum, which
    // is what makes recovery (and the no-metastable-shed guarantee)
    // structural rather than lucky.
    BrownoutLevel level = level_ == BrownoutLevel::Shed
        ? BrownoutLevel::ScreenerOnly
        : level_;
    if (cls == sim::RequestClass::Gold) {
        BrownoutLevel floor = config_.brownout.goldFloor;
        if (floor == BrownoutLevel::Shed)
            floor = BrownoutLevel::ScreenerOnly;
        if (static_cast<int>(level) > static_cast<int>(floor))
            level = floor;
    }
    return level;
}

std::vector<InferenceServer::Response>
InferenceServer::serveOneBatch(std::size_t k)
{
    std::vector<Response> responses;

    // Form the batch, dropping requests that already missed their
    // deadline — serving a dead request burns device time that live
    // requests behind it are waiting for.
    std::vector<PendingRequest> batch;
    while (batch.size() < spec_.batchSize && !pending_.empty()) {
        PendingRequest request = std::move(pending_.front());
        pending_.pop_front();
        if (expiredBy(request, deviceClock_)) {
            ++stats_.timedOutRequests;
            ++stats_.droppedBeforeService;
            if (metrics_)
                metrics_->counterAdd(
                    "server.dropped_before_service");
            recordResponse(Response::Status::TimedOut, -1.0);
            Response response{request.id,
                              {},
                              deviceClock_,
                              Response::Status::TimedOut};
            response.cls = request.cls;
            responses.push_back(std::move(response));
            continue;
        }
        batch.push_back(std::move(request));
    }
    // Dequeue-time gauge sample: the queue_depth trace must show the
    // drain edges, not just the arrival edges.
    if (metrics_ && !batch.empty()) {
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    if (batch.empty())
        return responses;

    // Functional pass: screen every query at its brownout rung and
    // union the candidate rows the device must fetch.  Degraded
    // rungs shrink (ReducedCandidates) or empty (ScreenerOnly) each
    // request's contribution to the union — that is exactly the
    // flash-traffic relief the ladder buys.
    std::set<std::uint64_t> union_rows;
    std::vector<xclass::ApproximateClassifier::Prediction>
        predictions;
    std::vector<BrownoutLevel> rungs;
    for (const PendingRequest &request : batch) {
        const BrownoutLevel rung = servingLevelFor(request.cls);
        rungs.push_back(rung);
        switch (rung) {
        case BrownoutLevel::Full: {
            predictions.push_back(
                classifier_->predict(request.feature, k));
            const std::vector<std::uint64_t> rows =
                classifier_->screener().screen(
                    request.feature, xclass::FilterMode::TopRatio);
            union_rows.insert(rows.begin(), rows.end());
            ++stats_.servedFull;
            break;
        }
        case BrownoutLevel::ReducedCandidates: {
            // Cap the usual candidate set to its top fraction by
            // screener score, then full-precision re-rank only the
            // survivors.
            std::vector<std::uint64_t> rows =
                classifier_->screener().screen(
                    request.feature, xclass::FilterMode::TopRatio);
            const std::size_t budget = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       static_cast<double>(rows.size())
                       * config_.brownout.reducedCandidateFraction));
            if (rows.size() > budget) {
                const numeric::Int4Vector prepared =
                    classifier_->screener().prepareFeature(
                        request.feature);
                const std::vector<double> scores =
                    classifier_->screener().scores(prepared);
                std::partial_sort(
                    rows.begin(), rows.begin() + budget, rows.end(),
                    [&scores](std::uint64_t a, std::uint64_t b) {
                        if (scores[a] != scores[b])
                            return scores[a] > scores[b];
                        return a < b;
                    });
                rows.resize(budget);
                std::sort(rows.begin(), rows.end());
            }
            predictions.push_back(
                classifier_->predictFrom(request.feature, rows, k));
            union_rows.insert(rows.begin(), rows.end());
            ++stats_.servedReducedCandidates;
            break;
        }
        default: {
            // ScreenerOnly: top-k straight from the INT4 scores —
            // no FP32 rows fetched for this request at all.
            predictions.push_back(
                classifier_->screenerOnly(request.feature, k));
            ++stats_.servedScreenerOnly;
            break;
        }
        }
        // Remember the feature: the next hot swap warms and
        // validates against the queries this server actually saw.
        if (recentQueries_.size() < 32) {
            recentQueries_.push_back(request.feature);
        } else {
            recentQueries_[recentCursor_] = request.feature;
            recentCursor_ = (recentCursor_ + 1) % 32;
        }
    }

    // Timing pass: the device fetches the union once per batch; the
    // batch cannot start before its newest member arrived.
    sim::Tick start = deviceClock_;
    sim::Tick oldest_enqueue = sim::maxTick;
    for (const PendingRequest &request : batch) {
        start = std::max(start, request.enqueuedAt);
        oldest_enqueue = std::min(oldest_enqueue, request.enqueuedAt);
    }
    const std::vector<std::uint64_t> candidates(union_rows.begin(),
                                                union_rows.end());
    sim::Tick backoff = 0;
    const accel::BatchTiming timing =
        timeBatchWithRetries(candidates, backoff);
    const sim::Tick batch_tick = backoff + timing.latency();
    const sim::Tick finished = start + batch_tick;
    stats_.degradedRows += timing.degradedRows;

    // Service-time EWMAs (3/4 old + 1/4 new): the admission sojourn
    // estimate and the dynamic-batching slack reserve.
    const sim::Tick per_request =
        batch_tick / static_cast<sim::Tick>(batch.size());
    ewmaBatchTick_ = ewmaBatchTick_ == 0
        ? batch_tick
        : (3 * ewmaBatchTick_ + batch_tick) / 4;
    ewmaServiceTick_ = ewmaServiceTick_ == 0
        ? per_request
        : (3 * ewmaServiceTick_ + per_request) / 4;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms =
            sim::tickToMs(finished - batch[i].enqueuedAt);
        latencyMs_.sample(ms);
        latencyPercentiles_.sample(ms);
        Response::Status status;
        if (config_.requestDeadline != 0
            && finished
                > batch[i].enqueuedAt + config_.requestDeadline) {
            status = Response::Status::TimedOut;
            ++stats_.timedOutRequests;
        } else if (timing.degradedRows > 0
                   || rungs[i] == BrownoutLevel::ScreenerOnly) {
            // ScreenerOnly answers carry screener scores by
            // construction — same contract as a degraded read.
            status = Response::Status::Degraded;
            ++stats_.degradedResponses;
        } else {
            status = Response::Status::Ok;
            ++stats_.okResponses;
        }
        recordResponse(status, ms);
        Response response{batch[i].id, std::move(predictions[i]),
                          finished, status};
        response.cls = batch[i].cls;
        response.servedAt = rungs[i];
        responses.push_back(std::move(response));
    }
    deviceClock_ = finished;
    noteBatchSojourn(oldest_enqueue, finished);
    if (metrics_) {
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    // The batch boundary is the swap's scheduling point: one staged
    // step here keeps the background IO yielding to the foreground
    // requests just served, and makes the flip atomic — no request
    // is in flight across it.
    stepRedeploy();
    return responses;
}

void
InferenceServer::setBrownoutLevel(BrownoutLevel level, sim::Tick now)
{
    if (level == level_)
        return;
    if (now > levelSince_)
        levelDwell_[static_cast<int>(level_)] += now - levelSince_;
    level_ = level;
    levelSince_ = now;
    ++stats_.brownoutTransitions;
    if (metrics_) {
        metrics_->counterAdd("server.brownout_transitions");
        metrics_->gaugeSet("server.brownout_level",
                           static_cast<double>(level));
    }
}

void
InferenceServer::noteBatchSojourn(sim::Tick oldest_enqueue,
                                  sim::Tick finished)
{
    if (!config_.brownout.enabled())
        return;
    const sim::Tick sojourn = finished > oldest_enqueue
        ? finished - oldest_enqueue
        : 0;
    if (sojourn > config_.brownout.enterDelay) {
        // Overloaded: degrade one rung, and any healthy streak is
        // over.
        healthySince_ = sim::maxTick;
        if (level_ != BrownoutLevel::Shed)
            setBrownoutLevel(
                static_cast<BrownoutLevel>(
                    static_cast<int>(level_) + 1),
                finished);
    } else if (sojourn <= config_.brownout.exitDelay) {
        // Healthy: recover one rung only after the guard dwell, and
        // re-arm the guard per rung so a long backlog climbs out
        // gradually instead of snapping to Full.
        if (healthySince_ == sim::maxTick)
            healthySince_ = finished;
        if (level_ != BrownoutLevel::Full
            && finished - healthySince_
                >= config_.brownout.recoveryGuard) {
            setBrownoutLevel(
                static_cast<BrownoutLevel>(
                    static_cast<int>(level_) - 1),
                finished);
            healthySince_ = finished;
        }
    } else {
        // Hysteresis band: hold the rung, break the healthy streak.
        healthySince_ = sim::maxTick;
    }
}

void
InferenceServer::idleRecoverStep()
{
    if (!config_.brownout.enabled()
        || level_ == BrownoutLevel::Full)
        return;
    // An empty queue with no arrivals is trivially healthy: dwell
    // out the recovery guard and climb one rung.  Looping this to
    // Full is what guarantees every drain terminates in steady
    // state — the ladder cannot stick below Full without traffic.
    const sim::Tick guard =
        std::max<sim::Tick>(config_.brownout.recoveryGuard, 1);
    deviceClock_ += guard;
    setBrownoutLevel(
        static_cast<BrownoutLevel>(static_cast<int>(level_) - 1),
        deviceClock_);
    healthySince_ = deviceClock_;
}

sim::Tick
InferenceServer::brownoutDwell(BrownoutLevel level) const
{
    sim::Tick dwell = levelDwell_[static_cast<int>(level)];
    if (level == level_ && deviceClock_ > levelSince_)
        dwell += deviceClock_ - levelSince_;
    return dwell;
}

sim::Tick
InferenceServer::batchCloseAt() const
{
    if (pending_.empty())
        return sim::maxTick;
    const sim::Tick oldest = pending_.front().enqueuedAt;
    sim::Tick close = config_.batchMaxWait == 0
        ? oldest
        : oldest + config_.batchMaxWait;
    if (config_.requestDeadline != 0) {
        // Close early enough that the oldest member still makes its
        // deadline given the measured batch service time: waiting
        // for a fuller batch must never spend slack the request does
        // not have.  The reserve is deliberately conservative (twice
        // the EWMA: individual batches run long of the average), and
        // an uncalibrated server does not wait at all.
        if (ewmaBatchTick_ == 0)
            return oldest;
        const sim::Tick deadline = oldest + config_.requestDeadline;
        const sim::Tick reserve = 2 * ewmaBatchTick_;
        close = std::min(close, deadline > reserve
                                    ? deadline - reserve
                                    : oldest);
    }
    return close;
}

std::vector<InferenceServer::Response>
InferenceServer::processAll(std::size_t k)
{
    std::vector<Response> responses;
    while (!pending_.empty()) {
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    // An idle server finishes any in-flight swap: without traffic
    // the background daemon keeps ticking the state machine.
    while (redeployActive())
        stepRedeploy();
    // ... and recovers the brownout ladder, so every drain ends in
    // steady state (Full, empty queue).
    while (config_.brownout.enabled()
           && level_ != BrownoutLevel::Full)
        idleRecoverStep();
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::serveBatch(std::size_t k)
{
    std::vector<Response> responses;
    if (!pending_.empty()) {
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    // Drain terminal responses produced outside the batch (admission
    // sheds, expiry drops) so the scheduler sees every outcome once.
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::runOpenLoop(
    const std::vector<std::vector<float>> &queries,
    double requests_per_second, unsigned request_count,
    std::size_t k, std::uint64_t seed)
{
    ECSSD_ASSERT(!queries.empty(), "open loop needs a query pool");
    ECSSD_ASSERT(requests_per_second > 0.0,
                 "offered load must be positive");

    // Pre-draw the Poisson arrival times.
    sim::Rng rng(seed);
    std::vector<sim::Tick> arrivals;
    double t_seconds = sim::tickToSeconds(deviceClock_);
    for (unsigned r = 0; r < request_count; ++r) {
        t_seconds +=
            -std::log(1.0 - rng.uniform()) / requests_per_second;
        arrivals.push_back(sim::seconds(t_seconds));
    }

    std::vector<Response> responses;
    std::size_t next_arrival = 0;
    while (next_arrival < arrivals.size() || !pending_.empty()) {
        // Admit everything that has arrived by the time the device
        // goes idle; if nothing is waiting, jump to the next
        // arrival.
        if (pending_.empty()
            && arrivals[next_arrival] > deviceClock_)
            deviceClock_ = arrivals[next_arrival];
        while (next_arrival < arrivals.size()
               && arrivals[next_arrival] <= deviceClock_) {
            enqueueAt(queries[next_arrival % queries.size()],
                      arrivals[next_arrival]);
            ++next_arrival;
        }
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    while (redeployActive())
        stepRedeploy();
    while (config_.brownout.enabled()
           && level_ != BrownoutLevel::Full)
        idleRecoverStep();
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::runTraffic(
    sim::TrafficEngine &engine, std::uint64_t count,
    const std::vector<std::vector<float>> &queries, std::size_t k)
{
    ECSSD_ASSERT(!queries.empty(),
                 "traffic serving needs a query pool");
    std::vector<Response> responses;
    responses.reserve(count);

    // Arrivals are drawn lazily one ahead: the engine is a pure
    // function of its config, so the stream is byte-identical per
    // seed no matter how serving interleaves with it.
    std::uint64_t drawn = 0;
    bool have_next = false;
    sim::Arrival next_arrival;
    const auto draw = [&]() {
        if (drawn < count) {
            next_arrival = engine.next();
            ++drawn;
            have_next = true;
        } else {
            have_next = false;
        }
    };
    const auto admit = [&](const sim::Arrival &arrival) {
        enqueueAt(queries[arrival.querySeed % queries.size()],
                  arrival.at, arrival.cls);
    };
    draw();

    while (have_next || !pending_.empty()) {
        // The device idles forward to the next arrival when nothing
        // is queued.
        if (pending_.empty() && have_next
            && next_arrival.at > deviceClock_)
            deviceClock_ = next_arrival.at;
        // Admit everything that has arrived by now.
        while (have_next && next_arrival.at <= deviceClock_) {
            admit(next_arrival);
            draw();
        }
        // Deadline-slack dynamic batching: a partial batch may wait
        // for more arrivals, but only until batchCloseAt() — the
        // earlier of the batch-wait window and the oldest member's
        // remaining deadline slack.
        if (config_.batchMaxWait != 0) {
            while (have_next && !pending_.empty()
                   && pending_.size() < spec_.batchSize
                   && next_arrival.at <= batchCloseAt()) {
                deviceClock_ =
                    std::max(deviceClock_, next_arrival.at);
                admit(next_arrival);
                draw();
            }
            if (!pending_.empty()
                && pending_.size() < spec_.batchSize) {
                const sim::Tick close = batchCloseAt();
                if (close != sim::maxTick && close > deviceClock_)
                    deviceClock_ = close;
            }
        }
        if (pending_.empty())
            continue;
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }

    // Terminal drain: finish any in-flight hot swap and recover the
    // ladder, so the run provably ends at (Full, empty queue).
    while (redeployActive())
        stepRedeploy();
    while (config_.brownout.enabled()
           && level_ != BrownoutLevel::Full)
        idleRecoverStep();
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

// --- Weight hot swap -------------------------------------------------

Status
InferenceServer::beginRedeploy(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const RedeployConfig &config,
    const numeric::FloatMatrix *trained_projection)
{
    if (swap_ && swap_->machine.active())
        return Status::RedeployActive;
    if (weights.rows() != spec.categories
        || weights.cols() != spec.hiddenDim)
        return Status::DimensionMismatch;
    // Queued and future requests carry the serving input width; a
    // swap cannot change it under them.
    if (spec.hiddenDim != spec_.hiddenDim)
        return Status::DimensionMismatch;
    config.validate();

    swap_ = std::make_unique<StagedSwap>();
    StagedSwap &swap = *swap_;
    swap.config = config;
    swap.weights = &weights;
    swap.spec = spec;
    swap.projection = trained_projection;
    swap.oldEpoch = deployEpoch_;
    swap.versionId = weightVersion_ + 1;
    swap.machine.attachObservability(metrics_, spans_);
    swap.machine.begin(deviceClock_);

    sim::Tick full_time = 0;
    try {
        full_time = estimateDeployTime(spec, options_.ssd);
    } catch (const sim::FatalError &) {
        rollbackSwap(RollbackReason::DramPressure);
        return Status::Ok;
    } catch (const sim::PanicError &) {
        rollbackSwap(RollbackReason::DramPressure);
        return Status::Ok;
    }
    swap.ledger.reset(spec.int4WeightBytes() + spec.fp32WeightBytes(),
                      full_time, config.ioBudgetFraction,
                      config.stepBytes);
    return Status::Ok;
}

Status
InferenceServer::redeployAdvance()
{
    if (!redeployActive())
        return Status::NoRedeploy;
    stepRedeploy();
    return Status::Ok;
}

bool
InferenceServer::redeployActive() const
{
    return swap_ && swap_->machine.active();
}

RedeployStatus
InferenceServer::redeployStatus() const
{
    RedeployStatus status;
    if (!swap_)
        return status;
    const StagedSwap &swap = *swap_;
    status.phase = swap.machine.phase();
    status.reason = swap.machine.reason();
    status.stagedBytes = swap.ledger.stagedBytes();
    status.totalBytes = swap.ledger.totalBytes();
    status.validationRecall = swap.recall;
    status.oldEpoch = swap.oldEpoch;
    status.newEpoch = swap.newEpoch;
    status.weightVersion = swap.versionId;
    status.stagingTime = swap.ledger.elapsed();
    return status;
}

void
InferenceServer::stepRedeploy()
{
    if (!redeployActive())
        return;
    StagedSwap &swap = *swap_;

    switch (swap.machine.phase()) {
    case RedeployPhase::Staging: {
        // A device that latched read-only can never program the
        // staged version.
        if (system_->ssd().ftl().readOnly()) {
            rollbackSwap(RollbackReason::DeviceReadOnly);
            return;
        }
        // One budgeted background-program chunk between batches: the
        // foreground just had the device to itself, now staging gets
        // its bounded slice.
        deviceClock_ += swap.ledger.step();
        if (!swap.ledger.done())
            return;
        try {
            swap.classifier =
                std::make_unique<xclass::ApproximateClassifier>(
                    *swap.weights, swap.spec, options_.seed,
                    swap.projection, threadPool_.get());
            swap.system =
                std::make_unique<EcssdSystem>(swap.spec, options_);
        } catch (const sim::FatalError &) {
            rollbackSwap(RollbackReason::DramPressure);
            return;
        } catch (const sim::PanicError &) {
            rollbackSwap(RollbackReason::DramPressure);
            return;
        }
        swap.machine.advanceTo(RedeployPhase::Warming, deviceClock_);
        return;
    }
    case RedeployPhase::Warming:
        if (swap.warmed < swap.config.warmupQueries
            && swap.warmed < recentQueries_.size()) {
            // Pre-fill the staged device's hot-row cache with the
            // rows this recorded query selects on the new weights.
            const std::vector<std::uint64_t> rows =
                swap.classifier->screener().screen(
                    recentQueries_[swap.warmed],
                    xclass::FilterMode::TopRatio);
            swap.system->pipeline().warmRows(rows, 0);
            ++swap.warmed;
        } else {
            swap.machine.advanceTo(RedeployPhase::Validating,
                                   deviceClock_);
        }
        return;
    case RedeployPhase::Validating: {
        const std::size_t target = std::min<std::size_t>(
            swap.config.validationQueries, recentQueries_.size());
        if (swap.validated < target) {
            // Shadow-score: of the candidates the live screener
            // selects (the serving TopRatio path), what fraction
            // does the staged screener also select?
            const std::vector<float> &query =
                recentQueries_[swap.validated];
            ++swap.validated;
            const std::vector<std::uint64_t> live_rows =
                classifier_->screener().screen(
                    query, xclass::FilterMode::TopRatio);
            if (live_rows.empty()) {
                swap.recallSum += 1.0;
                return;
            }
            const std::vector<std::uint64_t> staged_rows =
                swap.classifier->screener().screen(
                    query, xclass::FilterMode::TopRatio);
            std::vector<std::uint64_t> common;
            std::set_intersection(live_rows.begin(), live_rows.end(),
                                  staged_rows.begin(),
                                  staged_rows.end(),
                                  std::back_inserter(common));
            swap.recallSum += static_cast<double>(common.size())
                / static_cast<double>(live_rows.size());
            return;
        }
        swap.recall = swap.validated > 0
            ? swap.recallSum / static_cast<double>(swap.validated)
            : 1.0;
        if (swap.recall >= swap.config.minValidationRecall)
            flipSwap();
        else
            rollbackSwap(RollbackReason::ValidationRecall);
        return;
    }
    default:
        return;
    }
}

void
InferenceServer::flipSwap()
{
    StagedSwap &swap = *swap_;
    swap.machine.advanceTo(RedeployPhase::Flipping, deviceClock_);

    weights_ = swap.weights;
    spec_ = swap.spec;
    classifier_ = std::move(swap.classifier);
    system_ = std::move(swap.system);
    ++deployEpoch_;
    weightVersion_ = swap.versionId;
    swap.newEpoch = deployEpoch_;
    system_->setDeployVersion(deployEpoch_, weightVersion_);
    system_->attachObservability(metrics_, spans_);

    // Serving is synchronous per batch, so at this boundary no
    // request is bound to the old version: the drain is empty and
    // commits immediately, reclaiming the old device and classifier.
    swap.machine.advanceTo(RedeployPhase::Draining, deviceClock_);
    swap.machine.advanceTo(RedeployPhase::Committed, deviceClock_);
    ++redeployCommits_;
    if (metrics_)
        metrics_->gaugeSet("server.deploy_epoch",
                           static_cast<double>(deployEpoch_));
}

void
InferenceServer::rollbackSwap(RollbackReason reason)
{
    StagedSwap &swap = *swap_;
    swap.classifier.reset();
    swap.system.reset();
    swap.machine.rollback(reason, deviceClock_);
    ++redeployRollbacks_;
}

} // namespace ecssd
