#include "server.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{

InferenceServer::InferenceServer(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
    const numeric::FloatMatrix *trained_projection)
    : weights_(weights), spec_(spec),
      classifier_(weights, spec, options.seed, trained_projection),
      system_(std::make_unique<EcssdSystem>(spec, options))
{
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");
}

InferenceServer::RequestId
InferenceServer::enqueue(std::vector<float> feature)
{
    return enqueueAt(std::move(feature), deviceClock_);
}

InferenceServer::RequestId
InferenceServer::enqueueAt(std::vector<float> feature,
                           sim::Tick arrival)
{
    ECSSD_ASSERT(feature.size() == spec_.hiddenDim,
                 "feature dimension mismatch");
    const RequestId id = nextId_++;
    pending_.push_back(
        PendingRequest{id, std::move(feature), arrival});
    return id;
}

std::vector<InferenceServer::Response>
InferenceServer::serveOneBatch(std::size_t k)
{
    if (pending_.empty())
        return {};
    // Take up to one device batch of requests.
    const std::size_t take =
        std::min<std::size_t>(spec_.batchSize, pending_.size());
    std::vector<PendingRequest> batch;
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }

    // Functional pass: screen every query and union the candidate
    // rows the device must fetch for this batch.
    std::set<std::uint64_t> union_rows;
    std::vector<xclass::ApproximateClassifier::Prediction>
        predictions;
    for (const PendingRequest &request : batch) {
        const auto prediction =
            classifier_.predict(request.feature, k);
        predictions.push_back(prediction);
        const std::vector<std::uint64_t> rows =
            classifier_.screener().screen(
                request.feature, xclass::FilterMode::TopRatio);
        union_rows.insert(rows.begin(), rows.end());
    }

    // Timing pass: the device fetches the union once per batch; the
    // batch cannot start before its newest member arrived.
    sim::Tick start = deviceClock_;
    for (const PendingRequest &request : batch)
        start = std::max(start, request.enqueuedAt);
    const std::vector<std::uint64_t> candidates(union_rows.begin(),
                                                union_rows.end());
    system_->ssd().resetTimelines();
    const accel::BatchTiming timing =
        system_->pipeline().runBatch(candidates, 0);
    const sim::Tick finished = start + timing.latency();

    std::vector<Response> responses;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms =
            sim::tickToMs(finished - batch[i].enqueuedAt);
        latencyMs_.sample(ms);
        latencyPercentiles_.sample(ms);
        responses.push_back(Response{
            batch[i].id, std::move(predictions[i]), finished});
    }
    deviceClock_ = finished;
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::processAll(std::size_t k)
{
    std::vector<Response> responses;
    while (!pending_.empty()) {
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::runOpenLoop(
    const std::vector<std::vector<float>> &queries,
    double requests_per_second, unsigned request_count,
    std::size_t k, std::uint64_t seed)
{
    ECSSD_ASSERT(!queries.empty(), "open loop needs a query pool");
    ECSSD_ASSERT(requests_per_second > 0.0,
                 "offered load must be positive");

    // Pre-draw the Poisson arrival times.
    sim::Rng rng(seed);
    std::vector<sim::Tick> arrivals;
    double t_seconds = sim::tickToSeconds(deviceClock_);
    for (unsigned r = 0; r < request_count; ++r) {
        t_seconds +=
            -std::log(1.0 - rng.uniform()) / requests_per_second;
        arrivals.push_back(sim::seconds(t_seconds));
    }

    std::vector<Response> responses;
    std::size_t next_arrival = 0;
    while (next_arrival < arrivals.size() || !pending_.empty()) {
        // Admit everything that has arrived by the time the device
        // goes idle; if nothing is waiting, jump to the next
        // arrival.
        if (pending_.empty()
            && arrivals[next_arrival] > deviceClock_)
            deviceClock_ = arrivals[next_arrival];
        while (next_arrival < arrivals.size()
               && arrivals[next_arrival] <= deviceClock_) {
            enqueueAt(queries[next_arrival % queries.size()],
                      arrivals[next_arrival]);
            ++next_arrival;
        }
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    return responses;
}

} // namespace ecssd
