#include "server.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{

InferenceServer::InferenceServer(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
    const numeric::FloatMatrix *trained_projection,
    const ServerConfig &server_config)
    : weights_(weights), spec_(spec), config_(server_config),
      threadPool_(
          std::make_unique<sim::ThreadPool>(options.threads)),
      classifier_(weights, spec, options.seed, trained_projection,
                  threadPool_.get()),
      system_(std::make_unique<EcssdSystem>(spec, options))
{
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");
}

void
InferenceServer::attachObservability(sim::MetricsRegistry *metrics,
                                     sim::SpanTracer *spans)
{
    metrics_ = metrics;
    system_->attachObservability(metrics, spans);
}

void
InferenceServer::publishMetrics(sim::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, std::uint64_t value) {
        registry.gaugeSet(std::string("server.") + name,
                          static_cast<double>(value));
    };
    gauge("accepted_requests", stats_.acceptedRequests);
    gauge("shed_requests", stats_.shedRequests);
    gauge("timed_out_requests", stats_.timedOutRequests);
    gauge("dropped_before_service", stats_.droppedBeforeService);
    gauge("degraded_responses", stats_.degradedResponses);
    gauge("ok_responses", stats_.okResponses);
    gauge("batch_retries", stats_.batchRetries);
    gauge("exhausted_batches", stats_.exhaustedBatches);
    gauge("degraded_rows", stats_.degradedRows);
    registry.gaugeSet("server.device_time_ms",
                      sim::tickToMs(deviceClock_));
}

void
InferenceServer::recordResponse(Response::Status status,
                                double latency_ms)
{
    if (!metrics_)
        return;
    switch (status) {
    case Response::Status::Ok:
        metrics_->counterAdd("server.responses_ok");
        break;
    case Response::Status::Degraded:
        metrics_->counterAdd("server.responses_degraded");
        break;
    case Response::Status::TimedOut:
        metrics_->counterAdd("server.responses_timed_out");
        break;
    case Response::Status::Shed:
        metrics_->counterAdd("server.responses_shed");
        break;
    }
    if (latency_ms >= 0.0) {
        metrics_->histogramSample("server.latency_ms", 0.0, 500.0,
                                  1000, latency_ms);
    }
}

InferenceServer::RequestId
InferenceServer::enqueue(std::vector<float> feature)
{
    return enqueueAt(std::move(feature), deviceClock_);
}

InferenceServer::RequestId
InferenceServer::enqueueAt(std::vector<float> feature,
                           sim::Tick arrival)
{
    ECSSD_ASSERT(feature.size() == spec_.hiddenDim,
                 "feature dimension mismatch");
    const RequestId id = nextId_++;
    if (config_.queueCapacity != 0
        && pending_.size() >= config_.queueCapacity) {
        // Admission control: shedding at arrival keeps the queue
        // (and therefore worst-case queueing delay) bounded under
        // overload.
        ++stats_.shedRequests;
        recordResponse(Response::Status::Shed, -1.0);
        unservedResponses_.push_back(
            Response{id, {}, arrival, Response::Status::Shed});
        return id;
    }
    ++stats_.acceptedRequests;
    pending_.push_back(
        PendingRequest{id, std::move(feature), arrival});
    if (metrics_) {
        metrics_->counterAdd("server.accepted_requests");
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    return id;
}

bool
InferenceServer::expiredBy(const PendingRequest &request,
                           sim::Tick at) const
{
    return config_.requestDeadline != 0
        && at > request.enqueuedAt + config_.requestDeadline;
}

accel::BatchTiming
InferenceServer::timeBatchWithRetries(
    const std::vector<std::uint64_t> &candidates, sim::Tick &backoff)
{
    backoff = 0;
    system_->ssd().resetTimelines();
    accel::BatchTiming timing =
        system_->pipeline().runBatch(candidates, 0);

    // FailBatch aborts retry with exponential backoff; every retry
    // re-reads the flash, so a transient ECC loss usually clears
    // (the fault draws advance with the device's event counter).
    double backoff_us = config_.retryBackoffUs;
    for (unsigned attempt = 0;
         timing.failed && attempt < config_.maxBatchRetries;
         ++attempt) {
        ++stats_.batchRetries;
        if (metrics_)
            metrics_->counterAdd("server.batch_retries");
        backoff += sim::microseconds(backoff_us);
        backoff_us *= 2.0;
        system_->ssd().resetTimelines();
        timing = system_->pipeline().runBatch(candidates, 0);
    }

    if (timing.failed) {
        // Retry budget exhausted: serve the batch degraded (screener
        // scores for the lost rows) rather than dropping it.
        ++stats_.exhaustedBatches;
        if (metrics_)
            metrics_->counterAdd("server.exhausted_batches");
        accel::InferencePipeline &pipeline = system_->pipeline();
        const accel::DegradedReadPolicy saved =
            pipeline.degradedPolicy();
        pipeline.setDegradedPolicy(
            accel::DegradedReadPolicy::ScreenerFallback);
        system_->ssd().resetTimelines();
        timing = pipeline.runBatch(candidates, 0);
        pipeline.setDegradedPolicy(saved);
    }
    return timing;
}

std::vector<InferenceServer::Response>
InferenceServer::serveOneBatch(std::size_t k)
{
    std::vector<Response> responses;

    // Form the batch, dropping requests that already missed their
    // deadline — serving a dead request burns device time that live
    // requests behind it are waiting for.
    std::vector<PendingRequest> batch;
    while (batch.size() < spec_.batchSize && !pending_.empty()) {
        PendingRequest request = std::move(pending_.front());
        pending_.pop_front();
        if (expiredBy(request, deviceClock_)) {
            ++stats_.timedOutRequests;
            ++stats_.droppedBeforeService;
            if (metrics_)
                metrics_->counterAdd(
                    "server.dropped_before_service");
            recordResponse(Response::Status::TimedOut, -1.0);
            responses.push_back(Response{request.id,
                                         {},
                                         deviceClock_,
                                         Response::Status::TimedOut});
            continue;
        }
        batch.push_back(std::move(request));
    }
    if (batch.empty())
        return responses;

    // Functional pass: screen every query and union the candidate
    // rows the device must fetch for this batch.
    std::set<std::uint64_t> union_rows;
    std::vector<xclass::ApproximateClassifier::Prediction>
        predictions;
    for (const PendingRequest &request : batch) {
        const auto prediction =
            classifier_.predict(request.feature, k);
        predictions.push_back(prediction);
        const std::vector<std::uint64_t> rows =
            classifier_.screener().screen(
                request.feature, xclass::FilterMode::TopRatio);
        union_rows.insert(rows.begin(), rows.end());
    }

    // Timing pass: the device fetches the union once per batch; the
    // batch cannot start before its newest member arrived.
    sim::Tick start = deviceClock_;
    for (const PendingRequest &request : batch)
        start = std::max(start, request.enqueuedAt);
    const std::vector<std::uint64_t> candidates(union_rows.begin(),
                                                union_rows.end());
    sim::Tick backoff = 0;
    const accel::BatchTiming timing =
        timeBatchWithRetries(candidates, backoff);
    const sim::Tick finished = start + backoff + timing.latency();
    stats_.degradedRows += timing.degradedRows;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms =
            sim::tickToMs(finished - batch[i].enqueuedAt);
        latencyMs_.sample(ms);
        latencyPercentiles_.sample(ms);
        Response::Status status;
        if (config_.requestDeadline != 0
            && finished
                > batch[i].enqueuedAt + config_.requestDeadline) {
            status = Response::Status::TimedOut;
            ++stats_.timedOutRequests;
        } else if (timing.degradedRows > 0) {
            status = Response::Status::Degraded;
            ++stats_.degradedResponses;
        } else {
            status = Response::Status::Ok;
            ++stats_.okResponses;
        }
        recordResponse(status, ms);
        responses.push_back(Response{batch[i].id,
                                     std::move(predictions[i]),
                                     finished, status});
    }
    deviceClock_ = finished;
    if (metrics_) {
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::processAll(std::size_t k)
{
    std::vector<Response> responses;
    while (!pending_.empty()) {
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::runOpenLoop(
    const std::vector<std::vector<float>> &queries,
    double requests_per_second, unsigned request_count,
    std::size_t k, std::uint64_t seed)
{
    ECSSD_ASSERT(!queries.empty(), "open loop needs a query pool");
    ECSSD_ASSERT(requests_per_second > 0.0,
                 "offered load must be positive");

    // Pre-draw the Poisson arrival times.
    sim::Rng rng(seed);
    std::vector<sim::Tick> arrivals;
    double t_seconds = sim::tickToSeconds(deviceClock_);
    for (unsigned r = 0; r < request_count; ++r) {
        t_seconds +=
            -std::log(1.0 - rng.uniform()) / requests_per_second;
        arrivals.push_back(sim::seconds(t_seconds));
    }

    std::vector<Response> responses;
    std::size_t next_arrival = 0;
    while (next_arrival < arrivals.size() || !pending_.empty()) {
        // Admit everything that has arrived by the time the device
        // goes idle; if nothing is waiting, jump to the next
        // arrival.
        if (pending_.empty()
            && arrivals[next_arrival] > deviceClock_)
            deviceClock_ = arrivals[next_arrival];
        while (next_arrival < arrivals.size()
               && arrivals[next_arrival] <= deviceClock_) {
            enqueueAt(queries[next_arrival % queries.size()],
                      arrivals[next_arrival]);
            ++next_arrival;
        }
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

} // namespace ecssd
