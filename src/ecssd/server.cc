#include "server.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{

InferenceServer::InferenceServer(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
    const numeric::FloatMatrix *trained_projection,
    const ServerConfig &server_config)
    : weights_(&weights), spec_(spec), options_(options),
      config_(server_config),
      threadPool_(
          std::make_unique<sim::ThreadPool>(options.threads)),
      classifier_(std::make_unique<xclass::ApproximateClassifier>(
          weights, spec, options.seed, trained_projection,
          threadPool_.get())),
      system_(std::make_unique<EcssdSystem>(spec, options))
{
    ECSSD_ASSERT(weights.rows() == spec.categories
                     && weights.cols() == spec.hiddenDim,
                 "weights do not match the benchmark spec");
    system_->setDeployVersion(deployEpoch_, weightVersion_);
}

void
InferenceServer::attachObservability(sim::MetricsRegistry *metrics,
                                     sim::SpanTracer *spans)
{
    metrics_ = metrics;
    spans_ = spans;
    system_->attachObservability(metrics, spans);
    if (swap_)
        swap_->machine.attachObservability(metrics, spans);
}

void
InferenceServer::publishMetrics(sim::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, std::uint64_t value) {
        registry.gaugeSet(std::string("server.") + name,
                          static_cast<double>(value));
    };
    gauge("accepted_requests", stats_.acceptedRequests);
    gauge("shed_requests", stats_.shedRequests);
    gauge("timed_out_requests", stats_.timedOutRequests);
    gauge("dropped_before_service", stats_.droppedBeforeService);
    gauge("degraded_responses", stats_.degradedResponses);
    gauge("ok_responses", stats_.okResponses);
    gauge("batch_retries", stats_.batchRetries);
    gauge("exhausted_batches", stats_.exhaustedBatches);
    gauge("degraded_rows", stats_.degradedRows);
    registry.gaugeSet("server.device_time_ms",
                      sim::tickToMs(deviceClock_));
    gauge("deploy_epoch", deployEpoch_);
    gauge("weight_version", weightVersion_);
    if (swap_ || redeployCommits_ > 0 || redeployRollbacks_ > 0) {
        gauge("redeploy_commits", redeployCommits_);
        gauge("redeploy_rollbacks", redeployRollbacks_);
        if (swap_) {
            registry.gaugeSet(
                "server.redeploy_staged_bytes",
                static_cast<double>(swap_->ledger.stagedBytes()));
            registry.gaugeSet("server.redeploy_staging_ms",
                              sim::tickToMs(swap_->ledger.elapsed()));
            registry.gaugeSet("server.redeploy_validation_recall",
                              swap_->recall);
        }
    }
}

void
InferenceServer::recordResponse(Response::Status status,
                                double latency_ms)
{
    if (!metrics_)
        return;
    switch (status) {
    case Response::Status::Ok:
        metrics_->counterAdd("server.responses_ok");
        break;
    case Response::Status::Degraded:
        metrics_->counterAdd("server.responses_degraded");
        break;
    case Response::Status::TimedOut:
        metrics_->counterAdd("server.responses_timed_out");
        break;
    case Response::Status::Shed:
        metrics_->counterAdd("server.responses_shed");
        break;
    }
    if (latency_ms >= 0.0) {
        metrics_->histogramSample("server.latency_ms", 0.0, 500.0,
                                  1000, latency_ms);
    }
}

InferenceServer::RequestId
InferenceServer::enqueue(std::vector<float> feature)
{
    return enqueueAt(std::move(feature), deviceClock_);
}

InferenceServer::RequestId
InferenceServer::enqueueAt(std::vector<float> feature,
                           sim::Tick arrival)
{
    ECSSD_ASSERT(feature.size() == spec_.hiddenDim,
                 "feature dimension mismatch");
    const RequestId id = nextId_++;
    if (config_.queueCapacity != 0
        && pending_.size() >= config_.queueCapacity) {
        // Admission control: shedding at arrival keeps the queue
        // (and therefore worst-case queueing delay) bounded under
        // overload.
        ++stats_.shedRequests;
        recordResponse(Response::Status::Shed, -1.0);
        unservedResponses_.push_back(
            Response{id, {}, arrival, Response::Status::Shed});
        return id;
    }
    ++stats_.acceptedRequests;
    pending_.push_back(
        PendingRequest{id, std::move(feature), arrival});
    if (metrics_) {
        metrics_->counterAdd("server.accepted_requests");
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    return id;
}

bool
InferenceServer::expiredBy(const PendingRequest &request,
                           sim::Tick at) const
{
    return config_.requestDeadline != 0
        && at > request.enqueuedAt + config_.requestDeadline;
}

accel::BatchTiming
InferenceServer::timeBatchWithRetries(
    const std::vector<std::uint64_t> &candidates, sim::Tick &backoff)
{
    backoff = 0;
    system_->ssd().resetTimelines();
    accel::BatchTiming timing =
        system_->pipeline().runBatch(candidates, 0);

    // FailBatch aborts retry with exponential backoff; every retry
    // re-reads the flash, so a transient ECC loss usually clears
    // (the fault draws advance with the device's event counter).
    double backoff_us = config_.retryBackoffUs;
    for (unsigned attempt = 0;
         timing.failed && attempt < config_.maxBatchRetries;
         ++attempt) {
        ++stats_.batchRetries;
        if (metrics_)
            metrics_->counterAdd("server.batch_retries");
        backoff += sim::microseconds(backoff_us);
        backoff_us *= 2.0;
        system_->ssd().resetTimelines();
        timing = system_->pipeline().runBatch(candidates, 0);
    }

    if (timing.failed) {
        // Retry budget exhausted: serve the batch degraded (screener
        // scores for the lost rows) rather than dropping it.
        ++stats_.exhaustedBatches;
        if (metrics_)
            metrics_->counterAdd("server.exhausted_batches");
        accel::InferencePipeline &pipeline = system_->pipeline();
        const accel::DegradedReadPolicy saved =
            pipeline.degradedPolicy();
        pipeline.setDegradedPolicy(
            accel::DegradedReadPolicy::ScreenerFallback);
        system_->ssd().resetTimelines();
        timing = pipeline.runBatch(candidates, 0);
        pipeline.setDegradedPolicy(saved);
    }
    return timing;
}

std::vector<InferenceServer::Response>
InferenceServer::serveOneBatch(std::size_t k)
{
    std::vector<Response> responses;

    // Form the batch, dropping requests that already missed their
    // deadline — serving a dead request burns device time that live
    // requests behind it are waiting for.
    std::vector<PendingRequest> batch;
    while (batch.size() < spec_.batchSize && !pending_.empty()) {
        PendingRequest request = std::move(pending_.front());
        pending_.pop_front();
        if (expiredBy(request, deviceClock_)) {
            ++stats_.timedOutRequests;
            ++stats_.droppedBeforeService;
            if (metrics_)
                metrics_->counterAdd(
                    "server.dropped_before_service");
            recordResponse(Response::Status::TimedOut, -1.0);
            responses.push_back(Response{request.id,
                                         {},
                                         deviceClock_,
                                         Response::Status::TimedOut});
            continue;
        }
        batch.push_back(std::move(request));
    }
    if (batch.empty())
        return responses;

    // Functional pass: screen every query and union the candidate
    // rows the device must fetch for this batch.
    std::set<std::uint64_t> union_rows;
    std::vector<xclass::ApproximateClassifier::Prediction>
        predictions;
    for (const PendingRequest &request : batch) {
        const auto prediction =
            classifier_->predict(request.feature, k);
        predictions.push_back(prediction);
        const std::vector<std::uint64_t> rows =
            classifier_->screener().screen(
                request.feature, xclass::FilterMode::TopRatio);
        union_rows.insert(rows.begin(), rows.end());
        // Remember the feature: the next hot swap warms and
        // validates against the queries this server actually saw.
        if (recentQueries_.size() < 32) {
            recentQueries_.push_back(request.feature);
        } else {
            recentQueries_[recentCursor_] = request.feature;
            recentCursor_ = (recentCursor_ + 1) % 32;
        }
    }

    // Timing pass: the device fetches the union once per batch; the
    // batch cannot start before its newest member arrived.
    sim::Tick start = deviceClock_;
    for (const PendingRequest &request : batch)
        start = std::max(start, request.enqueuedAt);
    const std::vector<std::uint64_t> candidates(union_rows.begin(),
                                                union_rows.end());
    sim::Tick backoff = 0;
    const accel::BatchTiming timing =
        timeBatchWithRetries(candidates, backoff);
    const sim::Tick finished = start + backoff + timing.latency();
    stats_.degradedRows += timing.degradedRows;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms =
            sim::tickToMs(finished - batch[i].enqueuedAt);
        latencyMs_.sample(ms);
        latencyPercentiles_.sample(ms);
        Response::Status status;
        if (config_.requestDeadline != 0
            && finished
                > batch[i].enqueuedAt + config_.requestDeadline) {
            status = Response::Status::TimedOut;
            ++stats_.timedOutRequests;
        } else if (timing.degradedRows > 0) {
            status = Response::Status::Degraded;
            ++stats_.degradedResponses;
        } else {
            status = Response::Status::Ok;
            ++stats_.okResponses;
        }
        recordResponse(status, ms);
        responses.push_back(Response{batch[i].id,
                                     std::move(predictions[i]),
                                     finished, status});
    }
    deviceClock_ = finished;
    if (metrics_) {
        metrics_->gaugeSet(
            "server.queue_depth",
            static_cast<double>(pending_.size()));
    }
    // The batch boundary is the swap's scheduling point: one staged
    // step here keeps the background IO yielding to the foreground
    // requests just served, and makes the flip atomic — no request
    // is in flight across it.
    stepRedeploy();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::processAll(std::size_t k)
{
    std::vector<Response> responses;
    while (!pending_.empty()) {
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    // An idle server finishes any in-flight swap: without traffic
    // the background daemon keeps ticking the state machine.
    while (redeployActive())
        stepRedeploy();
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

std::vector<InferenceServer::Response>
InferenceServer::runOpenLoop(
    const std::vector<std::vector<float>> &queries,
    double requests_per_second, unsigned request_count,
    std::size_t k, std::uint64_t seed)
{
    ECSSD_ASSERT(!queries.empty(), "open loop needs a query pool");
    ECSSD_ASSERT(requests_per_second > 0.0,
                 "offered load must be positive");

    // Pre-draw the Poisson arrival times.
    sim::Rng rng(seed);
    std::vector<sim::Tick> arrivals;
    double t_seconds = sim::tickToSeconds(deviceClock_);
    for (unsigned r = 0; r < request_count; ++r) {
        t_seconds +=
            -std::log(1.0 - rng.uniform()) / requests_per_second;
        arrivals.push_back(sim::seconds(t_seconds));
    }

    std::vector<Response> responses;
    std::size_t next_arrival = 0;
    while (next_arrival < arrivals.size() || !pending_.empty()) {
        // Admit everything that has arrived by the time the device
        // goes idle; if nothing is waiting, jump to the next
        // arrival.
        if (pending_.empty()
            && arrivals[next_arrival] > deviceClock_)
            deviceClock_ = arrivals[next_arrival];
        while (next_arrival < arrivals.size()
               && arrivals[next_arrival] <= deviceClock_) {
            enqueueAt(queries[next_arrival % queries.size()],
                      arrivals[next_arrival]);
            ++next_arrival;
        }
        std::vector<Response> batch = serveOneBatch(k);
        for (Response &response : batch)
            responses.push_back(std::move(response));
    }
    while (redeployActive())
        stepRedeploy();
    for (Response &response : unservedResponses_)
        responses.push_back(std::move(response));
    unservedResponses_.clear();
    return responses;
}

// --- Weight hot swap -------------------------------------------------

Status
InferenceServer::beginRedeploy(
    const numeric::FloatMatrix &weights,
    const xclass::BenchmarkSpec &spec, const RedeployConfig &config,
    const numeric::FloatMatrix *trained_projection)
{
    if (swap_ && swap_->machine.active())
        return Status::RedeployActive;
    if (weights.rows() != spec.categories
        || weights.cols() != spec.hiddenDim)
        return Status::DimensionMismatch;
    // Queued and future requests carry the serving input width; a
    // swap cannot change it under them.
    if (spec.hiddenDim != spec_.hiddenDim)
        return Status::DimensionMismatch;
    config.validate();

    swap_ = std::make_unique<StagedSwap>();
    StagedSwap &swap = *swap_;
    swap.config = config;
    swap.weights = &weights;
    swap.spec = spec;
    swap.projection = trained_projection;
    swap.oldEpoch = deployEpoch_;
    swap.versionId = weightVersion_ + 1;
    swap.machine.attachObservability(metrics_, spans_);
    swap.machine.begin(deviceClock_);

    sim::Tick full_time = 0;
    try {
        full_time = estimateDeployTime(spec, options_.ssd);
    } catch (const sim::FatalError &) {
        rollbackSwap(RollbackReason::DramPressure);
        return Status::Ok;
    } catch (const sim::PanicError &) {
        rollbackSwap(RollbackReason::DramPressure);
        return Status::Ok;
    }
    swap.ledger.reset(spec.int4WeightBytes() + spec.fp32WeightBytes(),
                      full_time, config.ioBudgetFraction,
                      config.stepBytes);
    return Status::Ok;
}

Status
InferenceServer::redeployAdvance()
{
    if (!redeployActive())
        return Status::NoRedeploy;
    stepRedeploy();
    return Status::Ok;
}

bool
InferenceServer::redeployActive() const
{
    return swap_ && swap_->machine.active();
}

RedeployStatus
InferenceServer::redeployStatus() const
{
    RedeployStatus status;
    if (!swap_)
        return status;
    const StagedSwap &swap = *swap_;
    status.phase = swap.machine.phase();
    status.reason = swap.machine.reason();
    status.stagedBytes = swap.ledger.stagedBytes();
    status.totalBytes = swap.ledger.totalBytes();
    status.validationRecall = swap.recall;
    status.oldEpoch = swap.oldEpoch;
    status.newEpoch = swap.newEpoch;
    status.weightVersion = swap.versionId;
    status.stagingTime = swap.ledger.elapsed();
    return status;
}

void
InferenceServer::stepRedeploy()
{
    if (!redeployActive())
        return;
    StagedSwap &swap = *swap_;

    switch (swap.machine.phase()) {
    case RedeployPhase::Staging: {
        // A device that latched read-only can never program the
        // staged version.
        if (system_->ssd().ftl().readOnly()) {
            rollbackSwap(RollbackReason::DeviceReadOnly);
            return;
        }
        // One budgeted background-program chunk between batches: the
        // foreground just had the device to itself, now staging gets
        // its bounded slice.
        deviceClock_ += swap.ledger.step();
        if (!swap.ledger.done())
            return;
        try {
            swap.classifier =
                std::make_unique<xclass::ApproximateClassifier>(
                    *swap.weights, swap.spec, options_.seed,
                    swap.projection, threadPool_.get());
            swap.system =
                std::make_unique<EcssdSystem>(swap.spec, options_);
        } catch (const sim::FatalError &) {
            rollbackSwap(RollbackReason::DramPressure);
            return;
        } catch (const sim::PanicError &) {
            rollbackSwap(RollbackReason::DramPressure);
            return;
        }
        swap.machine.advanceTo(RedeployPhase::Warming, deviceClock_);
        return;
    }
    case RedeployPhase::Warming:
        if (swap.warmed < swap.config.warmupQueries
            && swap.warmed < recentQueries_.size()) {
            // Pre-fill the staged device's hot-row cache with the
            // rows this recorded query selects on the new weights.
            const std::vector<std::uint64_t> rows =
                swap.classifier->screener().screen(
                    recentQueries_[swap.warmed],
                    xclass::FilterMode::TopRatio);
            swap.system->pipeline().warmRows(rows, 0);
            ++swap.warmed;
        } else {
            swap.machine.advanceTo(RedeployPhase::Validating,
                                   deviceClock_);
        }
        return;
    case RedeployPhase::Validating: {
        const std::size_t target = std::min<std::size_t>(
            swap.config.validationQueries, recentQueries_.size());
        if (swap.validated < target) {
            // Shadow-score: of the candidates the live screener
            // selects (the serving TopRatio path), what fraction
            // does the staged screener also select?
            const std::vector<float> &query =
                recentQueries_[swap.validated];
            ++swap.validated;
            const std::vector<std::uint64_t> live_rows =
                classifier_->screener().screen(
                    query, xclass::FilterMode::TopRatio);
            if (live_rows.empty()) {
                swap.recallSum += 1.0;
                return;
            }
            const std::vector<std::uint64_t> staged_rows =
                swap.classifier->screener().screen(
                    query, xclass::FilterMode::TopRatio);
            std::vector<std::uint64_t> common;
            std::set_intersection(live_rows.begin(), live_rows.end(),
                                  staged_rows.begin(),
                                  staged_rows.end(),
                                  std::back_inserter(common));
            swap.recallSum += static_cast<double>(common.size())
                / static_cast<double>(live_rows.size());
            return;
        }
        swap.recall = swap.validated > 0
            ? swap.recallSum / static_cast<double>(swap.validated)
            : 1.0;
        if (swap.recall >= swap.config.minValidationRecall)
            flipSwap();
        else
            rollbackSwap(RollbackReason::ValidationRecall);
        return;
    }
    default:
        return;
    }
}

void
InferenceServer::flipSwap()
{
    StagedSwap &swap = *swap_;
    swap.machine.advanceTo(RedeployPhase::Flipping, deviceClock_);

    weights_ = swap.weights;
    spec_ = swap.spec;
    classifier_ = std::move(swap.classifier);
    system_ = std::move(swap.system);
    ++deployEpoch_;
    weightVersion_ = swap.versionId;
    swap.newEpoch = deployEpoch_;
    system_->setDeployVersion(deployEpoch_, weightVersion_);
    system_->attachObservability(metrics_, spans_);

    // Serving is synchronous per batch, so at this boundary no
    // request is bound to the old version: the drain is empty and
    // commits immediately, reclaiming the old device and classifier.
    swap.machine.advanceTo(RedeployPhase::Draining, deviceClock_);
    swap.machine.advanceTo(RedeployPhase::Committed, deviceClock_);
    ++redeployCommits_;
    if (metrics_)
        metrics_->gaugeSet("server.deploy_epoch",
                           static_cast<double>(deployEpoch_));
}

void
InferenceServer::rollbackSwap(RollbackReason reason)
{
    StagedSwap &swap = *swap_;
    swap.classifier.reset();
    swap.system.reset();
    swap.machine.rollback(reason, deviceClock_);
    ++redeployRollbacks_;
}

} // namespace ecssd
