#include "ecssd/redeploy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{

const char *
toString(RedeployPhase phase)
{
    switch (phase) {
      case RedeployPhase::Idle: return "Idle";
      case RedeployPhase::Staging: return "Staging";
      case RedeployPhase::Warming: return "Warming";
      case RedeployPhase::Validating: return "Validating";
      case RedeployPhase::Flipping: return "Flipping";
      case RedeployPhase::Draining: return "Draining";
      case RedeployPhase::Committed: return "Committed";
      case RedeployPhase::RolledBack: return "RolledBack";
    }
    return "?";
}

const char *
toString(RollbackReason reason)
{
    switch (reason) {
      case RollbackReason::None: return "None";
      case RollbackReason::Aborted: return "Aborted";
      case RollbackReason::ValidationRecall: return "ValidationRecall";
      case RollbackReason::StagedMediaFault: return "StagedMediaFault";
      case RollbackReason::DeviceReadOnly: return "DeviceReadOnly";
      case RollbackReason::DramPressure: return "DramPressure";
      case RollbackReason::DrainTimeout: return "DrainTimeout";
      case RollbackReason::ShardLoss: return "ShardLoss";
    }
    return "?";
}

void
RedeployConfig::validate() const
{
    if (ioBudgetFraction <= 0.0 || ioBudgetFraction > 1.0)
        sim::fatal("redeploy ioBudgetFraction must be in (0, 1], got ",
                   ioBudgetFraction);
    if (stepBytes == 0)
        sim::fatal("redeploy stepBytes must be positive");
    if (minValidationRecall < 0.0 || minValidationRecall > 1.0)
        sim::fatal("redeploy minValidationRecall must be in [0, 1], "
                   "got ", minValidationRecall);
    if (drainPollInterval == 0)
        sim::fatal("redeploy drainPollInterval must be positive");
}

// ---------------------------------------------------------------------
// RedeployMachine
// ---------------------------------------------------------------------

namespace
{

/** The legal forward successor of each active phase. */
RedeployPhase
nextPhaseOf(RedeployPhase phase)
{
    switch (phase) {
      case RedeployPhase::Staging: return RedeployPhase::Warming;
      case RedeployPhase::Warming: return RedeployPhase::Validating;
      case RedeployPhase::Validating: return RedeployPhase::Flipping;
      case RedeployPhase::Flipping: return RedeployPhase::Draining;
      case RedeployPhase::Draining: return RedeployPhase::Committed;
      default: return RedeployPhase::Idle;
    }
}

} // namespace

void
RedeployMachine::begin(sim::Tick now)
{
    if (active())
        sim::panic("redeploy begin() while a redeploy is active (",
                   toString(phase_), ")");
    reason_ = RollbackReason::None;
    enterPhase(RedeployPhase::Staging, now);
}

void
RedeployMachine::advanceTo(RedeployPhase next, sim::Tick now)
{
    if (!active() || next != nextPhaseOf(phase_))
        sim::panic("illegal redeploy transition ", toString(phase_),
                   " -> ", toString(next));
    enterPhase(next, now);
    if (next == RedeployPhase::Committed) {
        ++commits_;
        if (metrics_)
            metrics_->counterAdd("redeploy.commits");
    }
}

void
RedeployMachine::rollback(RollbackReason reason, sim::Tick now)
{
    if (!active())
        sim::panic("redeploy rollback() with no active redeploy (",
                   toString(phase_), ")");
    reason_ = reason;
    enterPhase(RedeployPhase::RolledBack, now);
    ++rollbacks_;
    if (metrics_)
        metrics_->counterAdd("redeploy.rollbacks");
}

void
RedeployMachine::attachObservability(sim::MetricsRegistry *metrics,
                                     sim::SpanTracer *spans)
{
    metrics_ = metrics;
    spans_ = spans;
    // An in-flight phase span belongs to the old tracer; forget it
    // rather than closing it on a stranger.
    spanOpen_ = false;
}

void
RedeployMachine::enterPhase(RedeployPhase next, sim::Tick now)
{
    if (spans_ && spanOpen_) {
        spans_->end(openSpan_,
                    std::max(now, phaseEnteredAt_));
        spanOpen_ = false;
    }
    phase_ = next;
    phaseEnteredAt_ = now;
    if (metrics_) {
        metrics_->gaugeSet("redeploy.phase",
                           static_cast<double>(phase_));
    }
    if (spans_ && !terminal() && phase_ != RedeployPhase::Idle) {
        openSpan_ = spans_->begin(
            std::string("redeploy.") + toString(phase_), now);
        spanOpen_ = true;
    }
}

// ---------------------------------------------------------------------
// StagingLedger
// ---------------------------------------------------------------------

void
StagingLedger::reset(std::uint64_t total_bytes,
                     sim::Tick full_bandwidth_time,
                     double io_budget_fraction,
                     std::uint64_t step_bytes)
{
    totalBytes_ = total_bytes;
    stagedBytes_ = 0;
    stepBytes_ = std::max<std::uint64_t>(step_bytes, 1);
    fullTime_ = full_bandwidth_time;
    budget_ = io_budget_fraction;
    elapsed_ = 0;
}

sim::Tick
StagingLedger::step()
{
    if (done())
        return 0;
    const std::uint64_t chunk =
        std::min(stepBytes_, totalBytes_ - stagedBytes_);
    stagedBytes_ += chunk;
    // The chunk's share of the stop-the-world time, stretched by the
    // inverse of the bandwidth fraction granted to staging.
    const double share = totalBytes_ == 0
        ? 1.0
        : static_cast<double>(chunk) / static_cast<double>(totalBytes_);
    const sim::Tick cost = static_cast<sim::Tick>(
        static_cast<double>(fullTime_) * share / budget_);
    elapsed_ += cost;
    return cost;
}

// ---------------------------------------------------------------------
// Staged-page probes
// ---------------------------------------------------------------------

bool
stageProbePages(ssdsim::Ftl &ftl,
                const std::vector<ssdsim::LogicalPage> &pages,
                unsigned &cursor, unsigned budget, sim::Tick now,
                RollbackReason &reason)
{
    for (unsigned n = 0; n < budget && cursor < pages.size();
         ++n, ++cursor) {
        const ssdsim::LogicalPage lpa = pages[cursor];
        bool rejected = false;
        const sim::Tick programmed = ftl.write(lpa, now, &rejected);
        if (rejected) {
            reason = RollbackReason::DeviceReadOnly;
            return false;
        }
        bool uncorrectable = false;
        ftl.read(lpa, programmed, &uncorrectable);
        if (uncorrectable) {
            reason = RollbackReason::StagedMediaFault;
            return false;
        }
    }
    return true;
}

} // namespace ecssd
