/**
 * @file
 * The host-facing ECSSD software library (Table 1).
 *
 * The API mirrors the paper's Python-style calls:
 *
 *   Preparation:  ecssdEnable/ecssdDisable, preAlign, weightDeploy
 *   Transmission: int4InputSend, cfp32InputSend, getResults
 *   Computation:  int4Screen, cfp32Classify, filterThreshold
 *
 * Calls are functional (they compute real predictions through the
 * bit-accurate datapaths) and timed (the device-side work drives the
 * simulated SSD's timelines, so every inference has a latency).
 *
 * Query state lives in an explicit InferenceSession: beginInference()
 * hands out a session whose sendInt4 / sendCfp32 / screen / classify
 * / results calls return a Status instead of dying, so hosts can
 * probe, retry, or interleave queries.  The Table 1 free-form calls
 * remain as thin wrappers over one implicit session, preserving their
 * original fail-fast contract (sim::fatal on sequence misuse).
 *
 * Weight versions are first-class: weightDeploy() remains the
 * stop-the-world path (every outstanding session turns stale), while
 * redeployBegin()/redeployAdvance() run the staged online redeploy of
 * redeploy.hh — the new version stages, warms, and validates in the
 * background, the deploy epoch flips atomically, and old-epoch
 * sessions keep serving on the draining version until the bounded
 * drain deadline.
 */

#ifndef ECSSD_ECSSD_API_HH
#define ECSSD_ECSSD_API_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ecssd/redeploy.hh"
#include "ecssd/status.hh"
#include "ecssd/streaming_deploy.hh"
#include "ecssd/system.hh"
#include "ecssd/tenant.hh"
#include "numeric/cfp32.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** Working mode of the device (Section 4.1). */
enum class Mode
{
    Ssd,
    Accelerator,
};

class EcssdApi;

/**
 * One query's state machine, held explicitly.
 *
 * Obtained from EcssdApi::beginInference().  Every call validates the
 * sequence and reports misuse through its Status return value; the
 * session never aborts.  A session is bound to the weight deployment
 * (deploy epoch) it was created under: a stop-the-world
 * weightDeploy() turns it stale immediately, while a staged online
 * redeploy lets it finish on the old version during the bounded drain
 * window — Status::StaleSession only after the drain closes.
 *
 * Sessions are move-only: the API tracks how many sessions are open
 * per epoch so a drain can complete the moment the last old-epoch
 * session closes.
 */
class InferenceSession
{
  public:
    InferenceSession(InferenceSession &&other) noexcept;
    InferenceSession &operator=(InferenceSession &&other) noexcept;
    ~InferenceSession();

    /** Send the 4-bit projected input (INT4_input_send).  Starts a
     *  fresh query: stale candidates/scores of this session are
     *  dropped. */
    Status sendInt4(std::span<const float> feature);

    /** Send the pre-aligned 32-bit input (CFP32_input_send). */
    Status sendCfp32(std::span<const float> feature);

    /** Run low-precision screening + filtering (INT4_screen). */
    Status screen();

    /** Run candidate-only full-precision classification
     *  (CFP32_classify); drives the device timing model. */
    Status classify();

    /**
     * Fetch the final top-k prediction (Get_results).
     *
     * @param k Result count.
     * @param[out] out The prediction, valid only on Status::Ok.
     */
    Status results(std::size_t k,
                   xclass::ApproximateClassifier::Prediction &out);

    /** Candidates selected by this session's last screen(). */
    std::size_t candidateCount() const { return candidates_.size(); }

    /** Device latency of this session's last classify(), in ticks. */
    sim::Tick latency() const { return latency_; }

    /** Deploy epoch this session is bound to. */
    std::uint64_t epoch() const { return epoch_; }

  private:
    friend class EcssdApi;

    explicit InferenceSession(EcssdApi &api);

    /** Mode / deployment / epoch guard shared by every call. */
    Status check() const;

    EcssdApi *api_;
    /** Deployment epoch this session was created under. */
    std::uint64_t epoch_;

    std::vector<float> feature_;
    bool int4Sent_ = false;
    bool cfp32Sent_ = false;
    bool classified_ = false;
    std::vector<std::uint64_t> candidates_;
    std::vector<double> scores_;
    sim::Tick latency_ = 0;
};

/** The ECSSD host library bound to one device. */
class EcssdApi
{
  public:
    /**
     * @param options Device configuration; screening/layout knobs
     *        apply to accelerator mode.
     */
    explicit EcssdApi(const EcssdOptions &options = EcssdOptions{});

    ~EcssdApi();

    // --- Preparation --------------------------------------------------

    /** Switch to accelerator mode (ECSSD_enable). */
    void ecssdEnable() { mode_ = Mode::Accelerator; }

    /** Switch to SSD mode (ECSSD_disable). */
    void ecssdDisable() { mode_ = Mode::Ssd; }

    Mode mode() const { return mode_; }

    /**
     * Host-side pre-alignment of one FP32 vector into CFP32
     * (Pre_align).  Static: runs on the host, not the device.
     */
    static numeric::Cfp32Vector
    preAlign(std::span<const float> values)
    {
        return numeric::Cfp32Vector::preAlign(values);
    }

    /**
     * Deploy a classification layer (Weight_deploy): builds the INT4
     * screener, pre-aligns and places the FP32 rows per the device's
     * layout strategy, and loads both into the device.  Stop the
     * world: invalidates every outstanding InferenceSession (and any
     * DRAM-cached rows of the previous layer), and aborts any staged
     * redeploy in flight.  For a swap that serves through the
     * transition, use redeployBegin().
     *
     * @param weights L x D FP32 weights (kept by reference; must
     *        outlive the API object).
     * @param spec Benchmark parameters.
     * @param trained_projection Optional learned K x D projection
     *        for the screener (see xclass::Screener).
     * @return Simulated deployment time.
     */
    sim::Tick weightDeploy(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /**
     * Deploy like weightDeploy(), but build the learning-adaptive
     * placement out of core: rows stream through quantize ->
     * hot-degree score -> budget-sized sorted runs spilled through
     * the device's flash -> k-way merge, so peak transient host
     * bytes stay under EcssdOptions::deployHostBudgetBytes (enforced
     * — E_DEPLOY_BUDGET on overdraft) instead of O(rows).  The
     * placement is bit-identical to weightDeploy()'s; the returned
     * deploy time uses the streaming overlap model (spill +
     * max(merge, channel programs)).  Falls back to weightDeploy()
     * for non-learning-adaptive layouts, which have no hotness sort
     * to stream.  Outcome details: streamingDeploy().
     */
    sim::Tick weightDeployStreaming(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** The most recent weightDeployStreaming() outcome (its layout
     *  pointer is consumed by the deploy); nullptr before the
     *  first streaming deploy. */
    const StreamingDeployResult *
    streamingDeploy() const
    {
        return streamingDeployed_ ? &lastStreaming_ : nullptr;
    }

    /** Set the screening threshold (Filter_threshold). */
    void filterThreshold(double threshold);

    /** Calibrate the threshold on sample queries (host-side). */
    void calibrateThreshold(
        const std::vector<std::vector<float>> &queries);

    // --- Staged online redeploy -----------------------------------

    /**
     * Begin a zero-downtime hot swap to @p weights: stage the new
     * version under the configured IO budget, warm and validate it
     * with recorded recent queries, flip the deploy epoch, and drain
     * old-epoch sessions — all driven incrementally by
     * redeployAdvance() (or to completion by redeployRun()) while
     * live sessions keep serving.
     *
     * Guards report through the return Status: WrongMode before
     * ecssdEnable(), NotDeployed before a first weightDeploy(),
     * RedeployActive while another redeploy is in flight,
     * DimensionMismatch when @p weights do not match @p spec.  A
     * redeploy that cannot even reserve its staging capacity still
     * returns Ok — it begins and immediately rolls back
     * (RollbackReason::DramPressure), observable via
     * redeployStatus().
     *
     * @param weights The new L x D layer (kept by reference; must
     *        outlive the redeploy).
     * @param spec The new version's benchmark parameters.
     * @param config Staging/validation/drain policy.
     * @param trained_projection Optional learned projection.
     */
    Status redeployBegin(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const RedeployConfig &config = RedeployConfig{},
        const numeric::FloatMatrix *trained_projection = nullptr);

    /**
     * Drive the active redeploy one step: one budgeted staging
     * chunk, one warm-up query, one validation query, the epoch
     * flip, or one drain poll — whichever the current phase needs.
     * Returns NoRedeploy once the redeploy is terminal (or none was
     * begun); Ok otherwise.
     */
    Status redeployAdvance();

    /**
     * Abort the active redeploy.  Legal before the flip (rolls back
     * with RollbackReason::Aborted, staged capacity released);
     * returns RedeployActive after the flip (the swap is already
     * serving; it completes through the drain), NoRedeploy when
     * nothing is in flight.
     */
    Status redeployAbort();

    /** Snapshot of the current (or last) redeploy.  Also polls the
     *  drain clock, so a deadline expiry is observed here too. */
    RedeployStatus redeployStatus();

    /**
     * Drive the active redeploy to its terminal phase.
     *
     * @return Background time the staging consumed (0 when no
     *         redeploy was active).
     */
    sim::Tick redeployRun();

    /** Current deploy epoch (bumped by weightDeploy and by every
     *  committed flip). */
    std::uint64_t deployEpoch() const { return deployEpoch_; }

    /** Monotone id of the weight version currently serving (0 before
     *  the first deployment). */
    std::uint64_t weightVersion() const { return live_.versionId; }

    // --- Sessions -------------------------------------------------

    /**
     * Start an explicit inference session bound to the current
     * deploy epoch.  Its calls report misuse via Status instead of
     * aborting; see InferenceSession for the staleness contract.
     */
    InferenceSession beginInference() { return InferenceSession(*this); }

    // --- Tenants --------------------------------------------------
    //
    // A production device serves several extreme-classification
    // models at once; each is a *tenant* with its own DRAM partition
    // (INT4 screener residency plus a hot-row cache byte quota
    // carved out of it), its own deploy epoch and redeploy state
    // machine, and its own metric/span namespace "tenant.<name>.*".
    // Every tenant-less call above operates on the implicit *default
    // tenant* — the device exactly as single-tenant code knows it —
    // so configs that never create a tenant stay byte-identical.

    /**
     * Admit one tenant: checks the partition ledger (the partitions
     * of all tenants must fit the device DRAM), carves the tenant's
     * engine — a DRAM partition sized to its dramBytes and a private
     * row cache sized to its cacheQuotaBytes, so the tenant can
     * never evict another tenant's rows past its quota — and enables
     * accelerator mode on it.
     *
     * @param config Partition/quota/SLO declaration.
     * @param[out] status Ok, or TenantQuotaExceeded when the
     *        partition does not fit (optional).
     * @return The admitted tenant; invalid on failure.
     */
    TenantHandle createTenant(const TenantConfig &config,
                              Status *status = nullptr);

    /** The tenant admission/partition ledger (empty when the device
     *  is single-tenant). */
    const TenantRegistry &
    tenantRegistry() const
    {
        return tenantRegistry_;
    }

    /**
     * Deploy a classification layer for one tenant (the tenant twin
     * of weightDeploy()).  The tenant's INT4 screener plus its cache
     * quota must fit its DRAM partition: TenantQuotaExceeded without
     * touching the device otherwise; UnknownTenant for a handle that
     * names no admitted tenant.
     *
     * @param[out] deploy_time Simulated deployment time, valid only
     *        on Ok.
     */
    Status weightDeploy(
        TenantHandle tenant, const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec, sim::Tick &deploy_time,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Tenant twin of weightDeployStreaming(); same quota guards as
     *  the tenant weightDeploy(). */
    Status weightDeployStreaming(
        TenantHandle tenant, const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec, sim::Tick &deploy_time,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /**
     * Start an inference session on one tenant's engine, bound to
     * *that tenant's* deploy epoch: the tenant's own weightDeploy()
     * turns it stale; other tenants' deployments never do.
     *
     * @param[out] status UnknownTenant for a bad handle (optional).
     * @return The session, or nullopt on failure.
     */
    std::optional<InferenceSession> beginInference(
        TenantHandle tenant, Status *status = nullptr);

    /** Begin a staged online redeploy on one tenant's engine (the
     *  tenant twin of redeployBegin(), with the tenant weight
     *  deploy's quota guards). */
    Status redeployBegin(
        TenantHandle tenant, const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const RedeployConfig &config = RedeployConfig{},
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Advance one tenant's active redeploy one step. */
    Status redeployAdvance(TenantHandle tenant);

    /**
     * Drive one tenant's active redeploy to its terminal phase.
     *
     * @param[out] background_time Staging background time, valid
     *        only on Ok.
     */
    Status redeployRun(TenantHandle tenant,
                       sim::Tick &background_time);

    /**
     * One tenant's current deploy epoch.
     *
     * @param[out] epoch Valid only on Ok.
     */
    Status deployEpoch(TenantHandle tenant,
                       std::uint64_t &epoch) const;

    /**
     * One tenant's engine: a full EcssdApi bound to the tenant's
     * DRAM partition and cache quota (nullptr for unknown handles).
     * The serving layer builds per-tenant servers over this; tests
     * reach the tenant's system()/rowCache through it.
     */
    EcssdApi *tenantEngine(TenantHandle tenant);

    /**
     * Snapshot the tenant layer into @p registry: the partition
     * ledger ("tenant.count", "tenant.committed_bytes", per-tenant
     * partition/quota/deploy gauges) plus each tenant's deploy epoch,
     * weight version, and service time under its namespace.  No-op
     * while no tenant is admitted, so single-tenant metric dumps stay
     * byte-identical.
     */
    void publishTenantMetrics(sim::MetricsRegistry &registry);

    // --- Transmission / Computation (Table 1 wrappers) ------------
    //
    // Thin delegates over one implicit session, with the original
    // fail-fast contract: sequence misuse dies via sim::fatal, a
    // dimension mismatch panics.  Deprecated: the implicit-session
    // calls predate explicit sessions and tenants — migrate to
    // `auto session = api.beginInference()` (or the TenantHandle
    // overload) and drive sendInt4/sendCfp32/screen/classify/results
    // on the session, which reports misuse via Status instead of
    // dying.

    /** Send the 4-bit projected input for one query (INT4_input_send).
     *  @deprecated Use beginInference() and
     *  InferenceSession::sendInt4(). */
    [[deprecated("use beginInference() and "
                 "InferenceSession::sendInt4()")]]
    void int4InputSend(std::span<const float> feature);

    /** Send the pre-aligned 32-bit input (CFP32_input_send).
     *  @deprecated Use beginInference() and
     *  InferenceSession::sendCfp32(). */
    [[deprecated("use beginInference() and "
                 "InferenceSession::sendCfp32()")]]
    void cfp32InputSend(std::span<const float> feature);

    /** Run low-precision screening + filtering (INT4_screen).
     *  @deprecated Use beginInference() and
     *  InferenceSession::screen(). */
    [[deprecated("use beginInference() and "
                 "InferenceSession::screen()")]]
    void int4Screen();

    /** Run candidate-only full-precision classification
     *  (CFP32_classify).
     *  @deprecated Use beginInference() and
     *  InferenceSession::classify(). */
    [[deprecated("use beginInference() and "
                 "InferenceSession::classify()")]]
    void cfp32Classify();

    /**
     * Fetch the final top-k prediction (Get_results).
     *
     * @param k Result count.
     * @deprecated Use beginInference() and
     * InferenceSession::results().
     */
    [[deprecated("use beginInference() and "
                 "InferenceSession::results()")]]
    xclass::ApproximateClassifier::Prediction getResults(
        std::size_t k);

    // --- SSD mode -------------------------------------------------

    /** Write one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdWrite(ssdsim::LogicalPage lpa);

    /** Read one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdRead(ssdsim::LogicalPage lpa);

    // --- Introspection -------------------------------------------

    /** Latency of the most recent full inference, in ticks. */
    sim::Tick lastInferenceLatency() const { return lastLatency_; }

    /** Candidates selected by the most recent int4Screen(). */
    std::size_t
    lastCandidateCount() const
    {
        return implicit_ ? implicit_->candidateCount() : 0;
    }

    /** Accelerator-mode system (valid after weightDeploy). */
    EcssdSystem &system() { return *live_.system; }

    /** SSD-mode system (valid after the first ssdWrite). */
    EcssdSystem &ssdSystem() { return *ssdMode_; }

    /**
     * Attach (or detach, with nullptr) observability sinks: forwarded
     * to the live system (pipeline/device instrumentation) and to the
     * redeploy machine ("redeploy.<phase>" spans, redeploy.commits /
     * redeploy.rollbacks counters, redeploy.phase gauge).  Survives
     * epoch flips — the new live version is re-instrumented at the
     * flip.
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /** Snapshot redeploy state ("redeploy.*" gauges) into
     *  @p registry; no-op when no redeploy was ever begun, keeping
     *  metrics of never-redeploying runs byte-identical. */
    void publishRedeployMetrics(sim::MetricsRegistry &registry);

    /** Snapshot the most recent streaming deploy ("deploy.*"
     *  gauges: wall-time, peak/budget host bytes, spill volume)
     *  into @p registry; no-op before the first
     *  weightDeployStreaming(), keeping metrics of classic-deploy
     *  runs byte-identical. */
    void publishDeployMetrics(sim::MetricsRegistry &registry);

    /**
     * Snapshot the live screener's tuned kernel plan ("kernel.*"
     * gauges: ISA level, row chunk, query tile, measured ns/row)
     * into @p registry; no-op before the first weightDeploy().
     * Explicit — never part of publishMetrics() — because the
     * ns/row gauge is wall-clock and would break byte-identical
     * metric goldens across machines and ISA levels.
     */
    void publishKernelMetrics(sim::MetricsRegistry &registry);

    /** Cumulative service time of this API (classify latencies plus
     *  background redeploy work); the clock drain deadlines are
     *  measured against. */
    sim::Tick serviceTime() const { return serviceClock_; }

  private:
    friend class InferenceSession;

    /** One weight generation: functional models plus its timed
     *  system, stamped with the epoch it serves under. */
    struct DeployedVersion
    {
        const numeric::FloatMatrix *weights = nullptr;
        std::optional<xclass::BenchmarkSpec> spec;
        std::unique_ptr<xclass::Screener> screener;
        std::unique_ptr<xclass::CandidateClassifier> classifier;
        std::unique_ptr<layout::LayoutStrategy> functionalLayout;
        std::unique_ptr<EcssdSystem> system;
        std::uint64_t epoch = 0;
        std::uint64_t versionId = 0;

        bool deployed() const { return static_cast<bool>(screener); }
    };

    /** Everything one staged redeploy carries until it terminates. */
    struct StagedRedeploy
    {
        RedeployMachine machine;
        RedeployConfig config;
        /** The version being staged (complete after Staging). */
        DeployedVersion version;
        const numeric::FloatMatrix *weights = nullptr;
        xclass::BenchmarkSpec spec;
        const numeric::FloatMatrix *projection = nullptr;
        StagingLedger ledger;
        /** Staging-area probe pages programmed through the live FTL. */
        std::vector<ssdsim::LogicalPage> probePages;
        unsigned probeCursor = 0;
        /** DRAM reserved on the live device for the staged INT4. */
        std::uint64_t stagedReserveBytes = 0;
        unsigned warmed = 0;
        unsigned validated = 0;
        double recallSum = 0.0;
        double recall = 1.0;
        /** Epochs on either side of the flip (newEpoch 0 until the
         *  flip assigns it). */
        std::uint64_t oldEpoch = 0;
        std::uint64_t newEpoch = 0;
        /** Service tick of the epoch flip (drain start). */
        sim::Tick flippedAt = 0;
        /** Drain duration so far (frozen at the terminal phase). */
        sim::Tick drainElapsed = 0;
    };

    /** One admitted tenant's backing engine: a private EcssdApi over
     *  a DRAM partition of this device, plus the persistent scoped
     *  metrics view its instrumentation writes through. */
    struct TenantEngine
    {
        std::string name;
        /** "tenant.<name>." — metric and span prefix. */
        std::string ns;
        /** Scoped view over the user's registry (null until
         *  attachObservability provides one).  Declared before the
         *  engine so it outlives the engine's teardown. */
        std::unique_ptr<sim::MetricsRegistry> metricsView;
        std::unique_ptr<EcssdApi> api;
        /** Weight version the registry ledger last charged for
         *  (0 = none): syncTenantCharge() re-charges on change. */
        std::uint64_t chargedVersion = 0;
    };

    void requireAccelerator(const char *api) const;
    void requireDeployed(const char *api) const;

    /** The tenant's engine, reporting UnknownTenant into @p status
     *  (when given) for a bad handle; nullptr on failure. */
    EcssdApi *resolveTenant(TenantHandle tenant, Status *status);

    /** Pre-check a tenant deploy: @p spec's INT4 screener plus the
     *  tenant's cache quota must fit its DRAM partition. */
    Status tenantDeployFits(TenantHandle tenant,
                            const xclass::BenchmarkSpec &spec) const;

    /** Mirror the tenant engine's serving screener residency into
     *  the partition ledger once per weight version. */
    void syncTenantCharge(TenantHandle tenant);

    /** The implicit session backing the Table 1 wrappers. */
    InferenceSession &implicitSession();

    /** The version serving @p epoch: the live one, or the draining
     *  one while its drain window is open; nullptr once stale. */
    DeployedVersion *resolve(std::uint64_t epoch);

    /** Session-count bookkeeping (InferenceSession ctor/dtor/move). */
    void sessionOpened(std::uint64_t epoch);
    void sessionClosed(std::uint64_t epoch);

    /** Open sessions bound to @p epoch. */
    std::uint64_t openSessions(std::uint64_t epoch) const;

    /** Record one query feature into the recent ring (warm-up and
     *  validation replay material). */
    void recordQuery(const std::vector<float> &feature);

    /** Build the staged version's functional models + system (throws
     *  sim::FatalError on an infeasible configuration). */
    void buildStagedVersion();

    /** Run one warm-up query through the staged version. */
    void warmOneQuery();

    /** Shadow-score one query: staged-vs-live screener recall. */
    void validateOneQuery();

    /** Flip the epoch: staged becomes live, live starts draining. */
    void flipEpoch();

    /** Check the drain: commit when the last old session closed,
     *  commit-or-rollback when the deadline expired. */
    void pollDrain();

    /** Commit: reclaim the draining version's capacity. */
    void commitRedeploy();

    /** Roll back the active redeploy (any phase) with @p reason. */
    void rollbackRedeploy(RollbackReason reason);

    EcssdOptions options_;
    Mode mode_ = Mode::Ssd;
    /**
     * SSD-mode system.  Kept separately so block data written in SSD
     * mode survives accelerator deployments: the weights occupy a
     * reserved address range, not the user's logical space.
     */
    std::unique_ptr<EcssdSystem> ssdMode_;

    /** The serving version (accelerator mode). */
    DeployedVersion live_;
    /** The previous version, serving old-epoch sessions during a
     *  drain; reclaimed at commit. */
    std::unique_ptr<DeployedVersion> draining_;
    /** The in-flight (or last terminal) staged redeploy. */
    std::unique_ptr<StagedRedeploy> redeploy_;

    /** The currently-serving epoch (what new sessions bind to). */
    std::uint64_t deployEpoch_ = 0;
    /**
     * Monotone epoch source.  Separate from deployEpoch_: a post-flip
     * rollback restores deployEpoch_ to the old value, but the burned
     * epoch is never reissued — sessions bound to a rolled-back
     * version must stay stale forever.
     */
    std::uint64_t epochCounter_ = 0;
    /** Monotone weight-version id source. */
    std::uint64_t versionCounter_ = 0;
    /** Lifetime commit/rollback counts (across redeploy attempts). */
    std::uint64_t redeployCommits_ = 0;
    std::uint64_t redeployRollbacks_ = 0;
    /** Open InferenceSessions per epoch. */
    std::map<std::uint64_t, std::uint64_t> openSessions_;
    /** Recent query features (ring, newest-overwrites-oldest). */
    std::vector<std::vector<float>> recentQueries_;
    std::size_t recentCursor_ = 0;
    /** Cumulative service clock (classify latencies + redeploy
     *  background work); drains are deadlined against it. */
    sim::Tick serviceClock_ = 0;
    sim::Tick lastLatency_ = 0;
    /** Optional observability sinks (null = uninstrumented). */
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
    /** Most recent streaming-deploy outcome (layout consumed). */
    StreamingDeployResult lastStreaming_;
    bool streamingDeployed_ = false;
    /** Tenant admission/partition ledger (budget: the device DRAM). */
    TenantRegistry tenantRegistry_;
    /** Admitted tenants' engines, id-ordered (deterministic). */
    std::map<TenantId, TenantEngine> tenantEngines_;
    /** Set on engines created by createTenant: an engine hosts no
     *  tenants of its own (one level of partitioning). */
    bool isTenantEngine_ = false;
    /** Span-name prefix this engine stamps while its device-side
     *  work runs ("" for the default tenant: tracer untouched). */
    std::string spanNamespace_;
    /**
     * The Table 1 wrappers' session (reset on weightDeploy).
     * Declared last: its destructor notifies sessionClosed(), which
     * may poll the drain, so every other member must still be alive
     * while it runs.
     */
    std::unique_ptr<InferenceSession> implicit_;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_API_HH
