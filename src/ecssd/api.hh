/**
 * @file
 * The host-facing ECSSD software library (Table 1).
 *
 * The API mirrors the paper's Python-style calls:
 *
 *   Preparation:  ecssdEnable/ecssdDisable, preAlign, weightDeploy
 *   Transmission: int4InputSend, cfp32InputSend, getResults
 *   Computation:  int4Screen, cfp32Classify, filterThreshold
 *
 * Calls are functional (they compute real predictions through the
 * bit-accurate datapaths) and timed (the device-side work drives the
 * simulated SSD's timelines, so every inference has a latency).
 */

#ifndef ECSSD_ECSSD_API_HH
#define ECSSD_ECSSD_API_HH

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ecssd/system.hh"
#include "numeric/cfp32.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** Working mode of the device (Section 4.1). */
enum class Mode
{
    Ssd,
    Accelerator,
};

/** The ECSSD host library bound to one device. */
class EcssdApi
{
  public:
    /**
     * @param options Device configuration; screening/layout knobs
     *        apply to accelerator mode.
     */
    explicit EcssdApi(const EcssdOptions &options = EcssdOptions{});

    // --- Preparation --------------------------------------------------

    /** Switch to accelerator mode (ECSSD_enable). */
    void ecssdEnable() { mode_ = Mode::Accelerator; }

    /** Switch to SSD mode (ECSSD_disable). */
    void ecssdDisable() { mode_ = Mode::Ssd; }

    Mode mode() const { return mode_; }

    /**
     * Host-side pre-alignment of one FP32 vector into CFP32
     * (Pre_align).  Static: runs on the host, not the device.
     */
    static numeric::Cfp32Vector
    preAlign(std::span<const float> values)
    {
        return numeric::Cfp32Vector::preAlign(values);
    }

    /**
     * Deploy a classification layer (Weight_deploy): builds the INT4
     * screener, pre-aligns and places the FP32 rows per the device's
     * layout strategy, and loads both into the device.
     *
     * @param weights L x D FP32 weights (kept by reference; must
     *        outlive the API object).
     * @param spec Benchmark parameters.
     * @param trained_projection Optional learned K x D projection
     *        for the screener (see xclass::Screener).
     * @return Simulated deployment time.
     */
    sim::Tick weightDeploy(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Set the screening threshold (Filter_threshold). */
    void filterThreshold(double threshold);

    /** Calibrate the threshold on sample queries (host-side). */
    void calibrateThreshold(
        const std::vector<std::vector<float>> &queries);

    // --- Transmission / Computation ------------------------------

    /** Send the 4-bit projected input for one query (INT4_input_send). */
    void int4InputSend(std::span<const float> feature);

    /** Send the pre-aligned 32-bit input (CFP32_input_send). */
    void cfp32InputSend(std::span<const float> feature);

    /** Run low-precision screening + filtering (INT4_screen). */
    void int4Screen();

    /** Run candidate-only full-precision classification
     *  (CFP32_classify). */
    void cfp32Classify();

    /**
     * Fetch the final top-k prediction (Get_results).
     *
     * @param k Result count.
     */
    xclass::ApproximateClassifier::Prediction getResults(
        std::size_t k);

    // --- SSD mode -------------------------------------------------

    /** Write one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdWrite(ssdsim::LogicalPage lpa);

    /** Read one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdRead(ssdsim::LogicalPage lpa);

    // --- Introspection -------------------------------------------

    /** Latency of the most recent full inference, in ticks. */
    sim::Tick lastInferenceLatency() const { return lastLatency_; }

    /** Candidates selected by the most recent int4Screen(). */
    std::size_t
    lastCandidateCount() const
    {
        return candidates_.size();
    }

    /** Accelerator-mode system (valid after weightDeploy). */
    EcssdSystem &system() { return *system_; }

    /** SSD-mode system (valid after the first ssdWrite). */
    EcssdSystem &ssdSystem() { return *ssdMode_; }

  private:
    void requireAccelerator(const char *api) const;
    void requireDeployed(const char *api) const;

    EcssdOptions options_;
    Mode mode_ = Mode::Ssd;
    /** Accelerator-mode system (rebuilt per weight deployment). */
    std::unique_ptr<EcssdSystem> system_;
    /**
     * SSD-mode system.  Kept separately so block data written in SSD
     * mode survives accelerator deployments: the weights occupy a
     * reserved address range, not the user's logical space.
     */
    std::unique_ptr<EcssdSystem> ssdMode_;

    // Functional state (accelerator mode).
    const numeric::FloatMatrix *weights_ = nullptr;
    std::optional<xclass::BenchmarkSpec> spec_;
    std::unique_ptr<xclass::Screener> screener_;
    std::unique_ptr<xclass::CandidateClassifier> classifier_;
    std::unique_ptr<layout::LayoutStrategy> functionalLayout_;

    std::vector<float> pendingFeature_;
    bool int4Sent_ = false;
    bool cfp32Sent_ = false;
    std::vector<std::uint64_t> candidates_;
    std::vector<double> candidateScores_;
    bool classified_ = false;
    sim::Tick lastLatency_ = 0;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_API_HH
