/**
 * @file
 * The host-facing ECSSD software library (Table 1).
 *
 * The API mirrors the paper's Python-style calls:
 *
 *   Preparation:  ecssdEnable/ecssdDisable, preAlign, weightDeploy
 *   Transmission: int4InputSend, cfp32InputSend, getResults
 *   Computation:  int4Screen, cfp32Classify, filterThreshold
 *
 * Calls are functional (they compute real predictions through the
 * bit-accurate datapaths) and timed (the device-side work drives the
 * simulated SSD's timelines, so every inference has a latency).
 *
 * Query state lives in an explicit InferenceSession: beginInference()
 * hands out a session whose sendInt4 / sendCfp32 / screen / classify
 * / results calls return a Status instead of dying, so hosts can
 * probe, retry, or interleave queries.  The Table 1 free-form calls
 * remain as thin wrappers over one implicit session, preserving their
 * original fail-fast contract (sim::fatal on sequence misuse).
 */

#ifndef ECSSD_ECSSD_API_HH
#define ECSSD_ECSSD_API_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ecssd/system.hh"
#include "numeric/cfp32.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** Working mode of the device (Section 4.1). */
enum class Mode
{
    Ssd,
    Accelerator,
};

/** Outcome of an InferenceSession call. */
enum class Status
{
    Ok,
    /** The device is not in accelerator mode (call ecssdEnable()). */
    WrongMode,
    /** No weights deployed (call weightDeploy()). */
    NotDeployed,
    /** The call needs an input this session has not received. */
    MissingInput,
    /** classify() before a screen() produced candidates. */
    NotScreened,
    /** results() before a successful classify(). */
    NotClassified,
    /** The feature length does not match the deployed layer. */
    DimensionMismatch,
    /** The session predates the current weight deployment. */
    StaleSession,
};

/** Human-readable status name. */
const char *toString(Status status);

class EcssdApi;

/**
 * One query's state machine, held explicitly.
 *
 * Obtained from EcssdApi::beginInference().  Every call validates the
 * sequence and reports misuse through its Status return value; the
 * session never aborts.  A session is bound to the weight deployment
 * it was created under — after another weightDeploy() its calls
 * return Status::StaleSession.
 */
class InferenceSession
{
  public:
    /** Send the 4-bit projected input (INT4_input_send).  Starts a
     *  fresh query: stale candidates/scores of this session are
     *  dropped. */
    Status sendInt4(std::span<const float> feature);

    /** Send the pre-aligned 32-bit input (CFP32_input_send). */
    Status sendCfp32(std::span<const float> feature);

    /** Run low-precision screening + filtering (INT4_screen). */
    Status screen();

    /** Run candidate-only full-precision classification
     *  (CFP32_classify); drives the device timing model. */
    Status classify();

    /**
     * Fetch the final top-k prediction (Get_results).
     *
     * @param k Result count.
     * @param[out] out The prediction, valid only on Status::Ok.
     */
    Status results(std::size_t k,
                   xclass::ApproximateClassifier::Prediction &out);

    /** Candidates selected by this session's last screen(). */
    std::size_t candidateCount() const { return candidates_.size(); }

    /** Device latency of this session's last classify(), in ticks. */
    sim::Tick latency() const { return latency_; }

  private:
    friend class EcssdApi;

    explicit InferenceSession(EcssdApi &api);

    /** Mode / deployment / epoch guard shared by every call. */
    Status check() const;

    EcssdApi *api_;
    /** Deployment epoch this session was created under. */
    std::uint64_t epoch_;

    std::vector<float> feature_;
    bool int4Sent_ = false;
    bool cfp32Sent_ = false;
    bool classified_ = false;
    std::vector<std::uint64_t> candidates_;
    std::vector<double> scores_;
    sim::Tick latency_ = 0;
};

/** The ECSSD host library bound to one device. */
class EcssdApi
{
  public:
    /**
     * @param options Device configuration; screening/layout knobs
     *        apply to accelerator mode.
     */
    explicit EcssdApi(const EcssdOptions &options = EcssdOptions{});

    // --- Preparation --------------------------------------------------

    /** Switch to accelerator mode (ECSSD_enable). */
    void ecssdEnable() { mode_ = Mode::Accelerator; }

    /** Switch to SSD mode (ECSSD_disable). */
    void ecssdDisable() { mode_ = Mode::Ssd; }

    Mode mode() const { return mode_; }

    /**
     * Host-side pre-alignment of one FP32 vector into CFP32
     * (Pre_align).  Static: runs on the host, not the device.
     */
    static numeric::Cfp32Vector
    preAlign(std::span<const float> values)
    {
        return numeric::Cfp32Vector::preAlign(values);
    }

    /**
     * Deploy a classification layer (Weight_deploy): builds the INT4
     * screener, pre-aligns and places the FP32 rows per the device's
     * layout strategy, and loads both into the device.  Invalidates
     * every outstanding InferenceSession (and any DRAM-cached rows of
     * the previous layer).
     *
     * @param weights L x D FP32 weights (kept by reference; must
     *        outlive the API object).
     * @param spec Benchmark parameters.
     * @param trained_projection Optional learned K x D projection
     *        for the screener (see xclass::Screener).
     * @return Simulated deployment time.
     */
    sim::Tick weightDeploy(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Set the screening threshold (Filter_threshold). */
    void filterThreshold(double threshold);

    /** Calibrate the threshold on sample queries (host-side). */
    void calibrateThreshold(
        const std::vector<std::vector<float>> &queries);

    // --- Sessions -------------------------------------------------

    /**
     * Start an explicit inference session.  The session is valid
     * until the next weightDeploy(); its calls report misuse via
     * Status instead of aborting.
     */
    InferenceSession beginInference() { return InferenceSession(*this); }

    // --- Transmission / Computation (Table 1 wrappers) ------------
    //
    // Thin delegates over one implicit session, with the original
    // fail-fast contract: sequence misuse dies via sim::fatal, a
    // dimension mismatch panics.

    /** Send the 4-bit projected input for one query (INT4_input_send). */
    void int4InputSend(std::span<const float> feature);

    /** Send the pre-aligned 32-bit input (CFP32_input_send). */
    void cfp32InputSend(std::span<const float> feature);

    /** Run low-precision screening + filtering (INT4_screen). */
    void int4Screen();

    /** Run candidate-only full-precision classification
     *  (CFP32_classify). */
    void cfp32Classify();

    /**
     * Fetch the final top-k prediction (Get_results).
     *
     * @param k Result count.
     */
    xclass::ApproximateClassifier::Prediction getResults(
        std::size_t k);

    // --- SSD mode -------------------------------------------------

    /** Write one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdWrite(ssdsim::LogicalPage lpa);

    /** Read one logical page in SSD mode; returns completion tick. */
    sim::Tick ssdRead(ssdsim::LogicalPage lpa);

    // --- Introspection -------------------------------------------

    /** Latency of the most recent full inference, in ticks. */
    sim::Tick lastInferenceLatency() const { return lastLatency_; }

    /** Candidates selected by the most recent int4Screen(). */
    std::size_t
    lastCandidateCount() const
    {
        return implicit_ ? implicit_->candidateCount() : 0;
    }

    /** Accelerator-mode system (valid after weightDeploy). */
    EcssdSystem &system() { return *system_; }

    /** SSD-mode system (valid after the first ssdWrite). */
    EcssdSystem &ssdSystem() { return *ssdMode_; }

  private:
    friend class InferenceSession;

    void requireAccelerator(const char *api) const;
    void requireDeployed(const char *api) const;

    /** The implicit session backing the Table 1 wrappers. */
    InferenceSession &implicitSession();

    EcssdOptions options_;
    Mode mode_ = Mode::Ssd;
    /** Accelerator-mode system (rebuilt per weight deployment). */
    std::unique_ptr<EcssdSystem> system_;
    /**
     * SSD-mode system.  Kept separately so block data written in SSD
     * mode survives accelerator deployments: the weights occupy a
     * reserved address range, not the user's logical space.
     */
    std::unique_ptr<EcssdSystem> ssdMode_;

    // Functional state (accelerator mode).
    const numeric::FloatMatrix *weights_ = nullptr;
    std::optional<xclass::BenchmarkSpec> spec_;
    std::unique_ptr<xclass::Screener> screener_;
    std::unique_ptr<xclass::CandidateClassifier> classifier_;
    std::unique_ptr<layout::LayoutStrategy> functionalLayout_;

    /** Bumped by weightDeploy(); sessions from earlier epochs turn
     *  stale. */
    std::uint64_t deployEpoch_ = 0;
    /** The Table 1 wrappers' session (reset on weightDeploy). */
    std::unique_ptr<InferenceSession> implicit_;
    sim::Tick lastLatency_ = 0;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_API_HH
