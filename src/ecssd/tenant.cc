#include "tenant.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace ecssd
{

void
TenantConfig::validate() const
{
    if (name.empty())
        sim::fatal("tenant config: name must not be empty");
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z')
            || (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            sim::fatal("tenant '", name,
                       "': names are metric-namespace material and "
                       "must match [a-z0-9_-]");
    }
    if (dramBytes == 0)
        sim::fatal("tenant '", name,
                   "': dramBytes must be positive (the partition "
                   "holds the screener residency)");
    if (cacheQuotaBytes > dramBytes)
        sim::fatal("tenant '", name, "': cache quota (",
                   cacheQuotaBytes, ") exceeds the DRAM partition (",
                   dramBytes, ")");
    if (goldShare < 0.0 || goldShare > 1.0)
        sim::fatal("tenant '", name, "': goldShare must be in [0, 1]");
    if (p99TargetMs < 0.0)
        sim::fatal("tenant '", name, "': p99TargetMs must be >= 0");
}

std::string
TenantConfig::metricNamespace() const
{
    return "tenant." + name + ".";
}

Status
TenantRegistry::admit(const TenantConfig &config, TenantHandle &handle)
{
    config.validate();
    for (const auto &[id, entry] : tenants_) {
        if (entry.config.name == config.name)
            sim::fatal("tenant '", config.name, "' admitted twice");
    }
    if (committedBytes() + config.dramBytes > dramBudgetBytes_)
        return Status::TenantQuotaExceeded;
    const TenantId id = nextId_++;
    tenants_.emplace(id, Entry{config, 0, 0});
    handle = TenantHandle(id);
    return Status::Ok;
}

bool
TenantRegistry::known(TenantHandle handle) const
{
    return handle.valid() && tenants_.count(handle.id()) != 0;
}

const TenantRegistry::Entry *
TenantRegistry::entry(TenantHandle handle) const
{
    if (!known(handle))
        return nullptr;
    return &tenants_.at(handle.id());
}

Status
TenantRegistry::chargeScreener(TenantHandle handle,
                               std::uint64_t bytes)
{
    if (!known(handle))
        return Status::UnknownTenant;
    Entry &entry = tenants_.at(handle.id());
    if (bytes + entry.config.cacheQuotaBytes > entry.config.dramBytes)
        return Status::TenantQuotaExceeded;
    entry.screenerBytes = bytes;
    ++entry.deploys;
    return Status::Ok;
}

std::uint64_t
TenantRegistry::committedBytes() const
{
    std::uint64_t sum = reservedBytes_;
    for (const auto &[id, entry] : tenants_)
        sum += entry.config.dramBytes;
    return sum;
}

void
TenantRegistry::publishMetrics(sim::MetricsRegistry &registry) const
{
    if (tenants_.empty())
        return;
    registry.gaugeSet("tenant.count",
                      static_cast<double>(tenants_.size()));
    registry.gaugeSet("tenant.committed_bytes",
                      static_cast<double>(committedBytes()));
    registry.gaugeSet("tenant.dram_budget_bytes",
                      static_cast<double>(dramBudgetBytes_));
    for (const auto &[id, entry] : tenants_) {
        const std::string ns = entry.config.metricNamespace();
        registry.gaugeSet(ns + "dram_bytes",
                          static_cast<double>(entry.config.dramBytes));
        registry.gaugeSet(
            ns + "cache_quota_bytes",
            static_cast<double>(entry.config.cacheQuotaBytes));
        registry.gaugeSet(ns + "screener_bytes",
                          static_cast<double>(entry.screenerBytes));
        registry.gaugeSet(ns + "deploys",
                          static_cast<double>(entry.deploys));
    }
}

std::string
TenantRegistry::describeTable() const
{
    std::string out;
    for (const auto &[id, entry] : tenants_) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s%s:%.0f/%.0fMiB",
                      out.empty() ? "" : " ",
                      entry.config.name.c_str(),
                      static_cast<double>(entry.config.dramBytes)
                          / (1 << 20),
                      static_cast<double>(entry.config.cacheQuotaBytes)
                          / (1 << 20));
        out += buf;
    }
    return out;
}

} // namespace ecssd
