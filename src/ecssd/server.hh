/**
 * @file
 * A host-side serving layer over one ECSSD: applications enqueue
 * query features, the server groups them into device batches
 * (Section 4.5 processes a batch of inputs per tile sweep), runs the
 * functional screening + classification, and reports per-request
 * latency statistics.
 *
 * Production hardening: per-request deadlines (late answers complete
 * as TimedOut, already-expired requests are dropped before burning
 * device time), bounded-queue admission control (overload sheds new
 * arrivals instead of growing the queue without bound), and a
 * retry-with-backoff path for batches the device aborts under the
 * FailBatch degraded-read policy (with a screener-fallback last
 * resort so the server keeps answering on a dying device).
 *
 * Zero-downtime weight hot swap: beginRedeploy() stages a new weight
 * version alongside the serving one; the staged-redeploy state
 * machine (redeploy.hh) advances one step between served batches, so
 * staging IO yields to foreground requests.  The version flip happens
 * at a batch boundary — the server serves requests synchronously, so
 * no request is ever in flight across the flip and the drain commits
 * immediately.  A validation failure or a device fault during staging
 * rolls back automatically; the old version keeps serving and no
 * request fails.
 */

#ifndef ECSSD_ECSSD_SERVER_HH
#define ECSSD_ECSSD_SERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ecssd/api.hh"
#include "ecssd/redeploy.hh"
#include "ecssd/system.hh"
#include "sim/stats.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** Serving-policy knobs of the InferenceServer. */
struct ServerConfig
{
    /** Per-request completion deadline measured from arrival; a
     *  request finishing later completes as TimedOut, and a request
     *  already expired when its batch forms is dropped without device
     *  work.  0 disables deadlines. */
    sim::Tick requestDeadline = 0;
    /** Admission-control bound on the pending queue; arrivals beyond
     *  it are shed immediately.  0 means unbounded. */
    std::size_t queueCapacity = 0;
    /** Device-batch retries after a FailBatch abort before the
     *  screener-fallback last resort serves the batch degraded. */
    unsigned maxBatchRetries = 2;
    /** First retry backoff; doubles on every further attempt. */
    double retryBackoffUs = 100.0;
};

/** Fault/health counters of one server instance. */
struct ServerStats
{
    std::uint64_t acceptedRequests = 0;
    /** Arrivals rejected by the bounded queue. */
    std::uint64_t shedRequests = 0;
    /** Requests that missed their deadline (dropped or served
     *  late). */
    std::uint64_t timedOutRequests = 0;
    /** Expired requests dropped before any device work. */
    std::uint64_t droppedBeforeService = 0;
    /** Responses carrying screener-degraded rows. */
    std::uint64_t degradedResponses = 0;
    std::uint64_t okResponses = 0;
    /** Device-batch re-executions after FailBatch aborts. */
    std::uint64_t batchRetries = 0;
    /** Batches that exhausted retries and fell back to degraded
     *  service. */
    std::uint64_t exhaustedBatches = 0;
    /** Candidate rows served from the INT4 screener score. */
    std::uint64_t degradedRows = 0;
};

/** The batching inference server. */
class InferenceServer
{
  public:
    using RequestId = std::uint64_t;

    /** One finished request. */
    struct Response
    {
        /** How the request left the server. */
        enum class Status
        {
            /** Served at full precision before the deadline. */
            Ok,
            /** Served, but some candidate rows carry screener scores
             *  (uncorrectable FP32 pages). */
            Degraded,
            /** Deadline missed: either dropped unserved (empty
             *  prediction) or completed late. */
            TimedOut,
            /** Rejected at admission by the bounded queue. */
            Shed,
        };

        RequestId id = 0;
        xclass::ApproximateClassifier::Prediction prediction;
        /** Device-time completion of the request's batch. */
        sim::Tick completedAt = 0;
        Status status = Status::Ok;
    };

    /**
     * @param weights The deployed L x D layer (must outlive the
     *        server).
     * @param spec Benchmark parameters.
     * @param options Device configuration.
     * @param trained_projection Optional learned projection.
     * @param server_config Serving-policy knobs (deadlines, queue
     *        bound, retry budget).
     */
    InferenceServer(const numeric::FloatMatrix &weights,
                    const xclass::BenchmarkSpec &spec,
                    const EcssdOptions &options = EcssdOptions::full(),
                    const numeric::FloatMatrix *trained_projection =
                        nullptr,
                    const ServerConfig &server_config =
                        ServerConfig{});

    /** Queue one query arriving now; returns its request id. */
    RequestId enqueue(std::vector<float> feature);

    /** Queue one query with an explicit arrival time. */
    RequestId enqueueAt(std::vector<float> feature,
                        sim::Tick arrival);

    /** Pending (not yet processed) request count. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Process every pending request in device batches.
     *
     * @param k Top-k size per request.
     * @return Responses in completion order (shed/dropped requests
     *         included, with their terminal status).
     */
    std::vector<Response> processAll(std::size_t k);

    /**
     * Open-loop serving study: requests arrive as a Poisson process
     * at @p requests_per_second; the device batches whatever has
     * arrived when it goes idle (partial batches allowed).  Latency
     * percentiles include queueing delay.
     *
     * @param queries Query pool to draw from (cycled).
     * @param requests_per_second Offered load.
     * @param request_count Total requests to serve.
     * @param k Top-k per request.
     * @param seed Arrival-process seed.
     */
    std::vector<Response> runOpenLoop(
        const std::vector<std::vector<float>> &queries,
        double requests_per_second, unsigned request_count,
        std::size_t k, std::uint64_t seed = 1);

    /** Per-request latency samples (milliseconds; served requests
     *  only). */
    const sim::Distribution &latencyMs() const { return latencyMs_; }

    /** Latency quantiles (milliseconds). */
    const sim::Percentiles &latencyPercentiles() const
    {
        return latencyPercentiles_;
    }

    /** Total simulated device time consumed so far. */
    sim::Tick deviceTime() const { return deviceClock_; }

    /** Fault/health counters. */
    const ServerStats &serverStats() const { return stats_; }

    /** The serving-policy knobs this server runs with. */
    const ServerConfig &serverConfig() const { return config_; }

    /** Device health at the server's cumulative device time. */
    ssdsim::HealthReport health() const
    {
        return system_->health(deviceClock_);
    }

    // --- Weight hot swap ------------------------------------------

    /**
     * Begin a staged hot swap to @p weights.  The swap advances one
     * state-machine step per served batch (staging chunks between
     * batches, so the IO budget yields to foreground requests) and
     * flips at a batch boundary; processAll()/runOpenLoop() finish
     * any in-flight swap after the queue empties.
     *
     * Returns RedeployActive while a swap is in flight and
     * DimensionMismatch when @p weights do not match @p spec or
     * @p spec changes the input width (queued requests could no
     * longer be served).  A swap whose staging footprint cannot fit
     * the device returns Ok and immediately rolls back
     * (RollbackReason::DramPressure) — observable via
     * redeployStatus().
     *
     * @param weights The new L x D layer (must outlive the swap).
     * @param spec The new version's benchmark parameters.
     * @param config Staging/validation policy.
     * @param trained_projection Optional learned projection.
     */
    Status beginRedeploy(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const RedeployConfig &config = RedeployConfig{},
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Advance the in-flight swap one step without serving a batch
     *  (an idle server's background daemon tick).  NoRedeploy once
     *  the swap is terminal or none was begun. */
    Status redeployAdvance();

    /** Snapshot of the current (or last) hot swap. */
    RedeployStatus redeployStatus() const;

    /** True while a hot swap is between begin and terminal. */
    bool redeployActive() const;

    /** Deploy epoch of the serving version (bumped per flip). */
    std::uint64_t deployEpoch() const { return deployEpoch_; }

    /** Monotone id of the serving weight version. */
    std::uint64_t weightVersion() const { return weightVersion_; }

    /**
     * Attach (or detach, with nullptr) observability sinks.  The
     * registry receives live "server.*" counters (admission, shed,
     * deadline, retry outcomes), the server.queue_depth gauge, and
     * the server.latency_ms end-to-end histogram; both sinks are also
     * forwarded to the underlying system (pipeline spans/counters,
     * flash busy intervals).  Recording never alters serving
     * behaviour or timing.
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /** Snapshot the ServerStats counters as "server.*" gauges. */
    void publishMetrics(sim::MetricsRegistry &registry) const;

  private:
    struct PendingRequest
    {
        RequestId id;
        std::vector<float> feature;
        sim::Tick enqueuedAt;
    };

    /** True when @p request missed its deadline by tick @p at. */
    bool expiredBy(const PendingRequest &request, sim::Tick at) const;

    /**
     * Run the device-timing pass for one batch, retrying FailBatch
     * aborts with exponential backoff and falling back to degraded
     * service when the retry budget is exhausted.
     *
     * @param candidates Union candidate rows of the batch.
     * @param[out] backoff Accumulated retry backoff to add to the
     *        batch completion time.
     */
    accel::BatchTiming timeBatchWithRetries(
        const std::vector<std::uint64_t> &candidates,
        sim::Tick &backoff);

    /** Everything one server hot swap stages until it terminates. */
    struct StagedSwap
    {
        RedeployMachine machine;
        RedeployConfig config;
        const numeric::FloatMatrix *weights = nullptr;
        xclass::BenchmarkSpec spec;
        const numeric::FloatMatrix *projection = nullptr;
        StagingLedger ledger;
        /** Built once staging completes. */
        std::unique_ptr<xclass::ApproximateClassifier> classifier;
        std::unique_ptr<EcssdSystem> system;
        unsigned warmed = 0;
        unsigned validated = 0;
        double recallSum = 0.0;
        double recall = 1.0;
        std::uint64_t oldEpoch = 0;
        std::uint64_t newEpoch = 0;
        std::uint64_t versionId = 0;
    };

    /** Advance the in-flight swap one step (between batches). */
    void stepRedeploy();

    /** Flip to the staged version at a batch boundary and commit. */
    void flipSwap();

    /** Roll the in-flight swap back; the old version keeps serving. */
    void rollbackSwap(RollbackReason reason);

    const numeric::FloatMatrix *weights_;
    xclass::BenchmarkSpec spec_;
    EcssdOptions options_;
    ServerConfig config_;
    /** Host-compute pool shared by the functional classifier
     *  (options.threads workers); declared before classifier_ so it
     *  outlives every parallel consumer. */
    std::unique_ptr<sim::ThreadPool> threadPool_;
    std::unique_ptr<xclass::ApproximateClassifier> classifier_;
    std::unique_ptr<EcssdSystem> system_;
    /** The in-flight (or last terminal) hot swap. */
    std::unique_ptr<StagedSwap> swap_;
    std::uint64_t deployEpoch_ = 1;
    std::uint64_t weightVersion_ = 1;
    /** Recent request features (ring): hot-swap warm-up/validation
     *  replay material. */
    std::vector<std::vector<float>> recentQueries_;
    std::size_t recentCursor_ = 0;
    std::deque<PendingRequest> pending_;
    /** Terminal responses produced outside a served batch (shed at
     *  admission, dropped at expiry); drained by processAll /
     *  runOpenLoop. */
    std::vector<Response> unservedResponses_;
    /** Serve the oldest <= batchSize pending requests once. */
    std::vector<Response> serveOneBatch(std::size_t k);

    /** Record one served-request latency/outcome when attached. */
    void recordResponse(Response::Status status, double latency_ms);

    RequestId nextId_ = 1;
    sim::Tick deviceClock_ = 0;
    sim::Distribution latencyMs_;
    sim::Percentiles latencyPercentiles_;
    ServerStats stats_;
    /** Lifetime hot-swap outcome counts. */
    std::uint64_t redeployCommits_ = 0;
    std::uint64_t redeployRollbacks_ = 0;
    /** Optional observability sinks (null = uninstrumented); kept so
     *  an epoch flip can re-instrument the new system. */
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SERVER_HH
