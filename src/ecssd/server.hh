/**
 * @file
 * A host-side serving layer over one ECSSD: applications enqueue
 * query features, the server groups them into device batches
 * (Section 4.5 processes a batch of inputs per tile sweep), runs the
 * functional screening + classification, and reports per-request
 * latency statistics.
 *
 * Production hardening: per-request deadlines (late answers complete
 * as TimedOut, already-expired requests are dropped before burning
 * device time), bounded-queue admission control (overload sheds new
 * arrivals instead of growing the queue without bound), and a
 * retry-with-backoff path for batches the device aborts under the
 * FailBatch degraded-read policy (with a screener-fallback last
 * resort so the server keeps answering on a dying device).
 */

#ifndef ECSSD_ECSSD_SERVER_HH
#define ECSSD_ECSSD_SERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ecssd/system.hh"
#include "sim/stats.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** Serving-policy knobs of the InferenceServer. */
struct ServerConfig
{
    /** Per-request completion deadline measured from arrival; a
     *  request finishing later completes as TimedOut, and a request
     *  already expired when its batch forms is dropped without device
     *  work.  0 disables deadlines. */
    sim::Tick requestDeadline = 0;
    /** Admission-control bound on the pending queue; arrivals beyond
     *  it are shed immediately.  0 means unbounded. */
    std::size_t queueCapacity = 0;
    /** Device-batch retries after a FailBatch abort before the
     *  screener-fallback last resort serves the batch degraded. */
    unsigned maxBatchRetries = 2;
    /** First retry backoff; doubles on every further attempt. */
    double retryBackoffUs = 100.0;
};

/** Fault/health counters of one server instance. */
struct ServerStats
{
    std::uint64_t acceptedRequests = 0;
    /** Arrivals rejected by the bounded queue. */
    std::uint64_t shedRequests = 0;
    /** Requests that missed their deadline (dropped or served
     *  late). */
    std::uint64_t timedOutRequests = 0;
    /** Expired requests dropped before any device work. */
    std::uint64_t droppedBeforeService = 0;
    /** Responses carrying screener-degraded rows. */
    std::uint64_t degradedResponses = 0;
    std::uint64_t okResponses = 0;
    /** Device-batch re-executions after FailBatch aborts. */
    std::uint64_t batchRetries = 0;
    /** Batches that exhausted retries and fell back to degraded
     *  service. */
    std::uint64_t exhaustedBatches = 0;
    /** Candidate rows served from the INT4 screener score. */
    std::uint64_t degradedRows = 0;
};

/** The batching inference server. */
class InferenceServer
{
  public:
    using RequestId = std::uint64_t;

    /** One finished request. */
    struct Response
    {
        /** How the request left the server. */
        enum class Status
        {
            /** Served at full precision before the deadline. */
            Ok,
            /** Served, but some candidate rows carry screener scores
             *  (uncorrectable FP32 pages). */
            Degraded,
            /** Deadline missed: either dropped unserved (empty
             *  prediction) or completed late. */
            TimedOut,
            /** Rejected at admission by the bounded queue. */
            Shed,
        };

        RequestId id = 0;
        xclass::ApproximateClassifier::Prediction prediction;
        /** Device-time completion of the request's batch. */
        sim::Tick completedAt = 0;
        Status status = Status::Ok;
    };

    /**
     * @param weights The deployed L x D layer (must outlive the
     *        server).
     * @param spec Benchmark parameters.
     * @param options Device configuration.
     * @param trained_projection Optional learned projection.
     * @param server_config Serving-policy knobs (deadlines, queue
     *        bound, retry budget).
     */
    InferenceServer(const numeric::FloatMatrix &weights,
                    const xclass::BenchmarkSpec &spec,
                    const EcssdOptions &options = EcssdOptions::full(),
                    const numeric::FloatMatrix *trained_projection =
                        nullptr,
                    const ServerConfig &server_config =
                        ServerConfig{});

    /** Queue one query arriving now; returns its request id. */
    RequestId enqueue(std::vector<float> feature);

    /** Queue one query with an explicit arrival time. */
    RequestId enqueueAt(std::vector<float> feature,
                        sim::Tick arrival);

    /** Pending (not yet processed) request count. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Process every pending request in device batches.
     *
     * @param k Top-k size per request.
     * @return Responses in completion order (shed/dropped requests
     *         included, with their terminal status).
     */
    std::vector<Response> processAll(std::size_t k);

    /**
     * Open-loop serving study: requests arrive as a Poisson process
     * at @p requests_per_second; the device batches whatever has
     * arrived when it goes idle (partial batches allowed).  Latency
     * percentiles include queueing delay.
     *
     * @param queries Query pool to draw from (cycled).
     * @param requests_per_second Offered load.
     * @param request_count Total requests to serve.
     * @param k Top-k per request.
     * @param seed Arrival-process seed.
     */
    std::vector<Response> runOpenLoop(
        const std::vector<std::vector<float>> &queries,
        double requests_per_second, unsigned request_count,
        std::size_t k, std::uint64_t seed = 1);

    /** Per-request latency samples (milliseconds; served requests
     *  only). */
    const sim::Distribution &latencyMs() const { return latencyMs_; }

    /** Latency quantiles (milliseconds). */
    const sim::Percentiles &latencyPercentiles() const
    {
        return latencyPercentiles_;
    }

    /** Total simulated device time consumed so far. */
    sim::Tick deviceTime() const { return deviceClock_; }

    /** Fault/health counters. */
    const ServerStats &serverStats() const { return stats_; }

    /** The serving-policy knobs this server runs with. */
    const ServerConfig &serverConfig() const { return config_; }

    /** Device health at the server's cumulative device time. */
    ssdsim::HealthReport health() const
    {
        return system_->health(deviceClock_);
    }

    /**
     * Attach (or detach, with nullptr) observability sinks.  The
     * registry receives live "server.*" counters (admission, shed,
     * deadline, retry outcomes), the server.queue_depth gauge, and
     * the server.latency_ms end-to-end histogram; both sinks are also
     * forwarded to the underlying system (pipeline spans/counters,
     * flash busy intervals).  Recording never alters serving
     * behaviour or timing.
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /** Snapshot the ServerStats counters as "server.*" gauges. */
    void publishMetrics(sim::MetricsRegistry &registry) const;

  private:
    struct PendingRequest
    {
        RequestId id;
        std::vector<float> feature;
        sim::Tick enqueuedAt;
    };

    /** True when @p request missed its deadline by tick @p at. */
    bool expiredBy(const PendingRequest &request, sim::Tick at) const;

    /**
     * Run the device-timing pass for one batch, retrying FailBatch
     * aborts with exponential backoff and falling back to degraded
     * service when the retry budget is exhausted.
     *
     * @param candidates Union candidate rows of the batch.
     * @param[out] backoff Accumulated retry backoff to add to the
     *        batch completion time.
     */
    accel::BatchTiming timeBatchWithRetries(
        const std::vector<std::uint64_t> &candidates,
        sim::Tick &backoff);

    const numeric::FloatMatrix &weights_;
    xclass::BenchmarkSpec spec_;
    ServerConfig config_;
    /** Host-compute pool shared by the functional classifier
     *  (options.threads workers); declared before classifier_ so it
     *  outlives every parallel consumer. */
    std::unique_ptr<sim::ThreadPool> threadPool_;
    xclass::ApproximateClassifier classifier_;
    std::unique_ptr<EcssdSystem> system_;
    std::deque<PendingRequest> pending_;
    /** Terminal responses produced outside a served batch (shed at
     *  admission, dropped at expiry); drained by processAll /
     *  runOpenLoop. */
    std::vector<Response> unservedResponses_;
    /** Serve the oldest <= batchSize pending requests once. */
    std::vector<Response> serveOneBatch(std::size_t k);

    /** Record one served-request latency/outcome when attached. */
    void recordResponse(Response::Status status, double latency_ms);

    RequestId nextId_ = 1;
    sim::Tick deviceClock_ = 0;
    sim::Distribution latencyMs_;
    sim::Percentiles latencyPercentiles_;
    ServerStats stats_;
    /** Optional live-metrics sink (null = uninstrumented). */
    sim::MetricsRegistry *metrics_ = nullptr;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SERVER_HH
