/**
 * @file
 * A host-side serving layer over one ECSSD: applications enqueue
 * query features, the server groups them into device batches
 * (Section 4.5 processes a batch of inputs per tile sweep), runs the
 * functional screening + classification, and reports per-request
 * latency statistics.
 */

#ifndef ECSSD_ECSSD_SERVER_HH
#define ECSSD_ECSSD_SERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ecssd/system.hh"
#include "sim/stats.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/** The batching inference server. */
class InferenceServer
{
  public:
    using RequestId = std::uint64_t;

    /** One finished request. */
    struct Response
    {
        RequestId id = 0;
        xclass::ApproximateClassifier::Prediction prediction;
        /** Device-time completion of the request's batch. */
        sim::Tick completedAt = 0;
    };

    /**
     * @param weights The deployed L x D layer (must outlive the
     *        server).
     * @param spec Benchmark parameters.
     * @param options Device configuration.
     * @param trained_projection Optional learned projection.
     */
    InferenceServer(const numeric::FloatMatrix &weights,
                    const xclass::BenchmarkSpec &spec,
                    const EcssdOptions &options = EcssdOptions::full(),
                    const numeric::FloatMatrix *trained_projection =
                        nullptr);

    /** Queue one query arriving now; returns its request id. */
    RequestId enqueue(std::vector<float> feature);

    /** Queue one query with an explicit arrival time. */
    RequestId enqueueAt(std::vector<float> feature,
                        sim::Tick arrival);

    /** Pending (not yet processed) request count. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Process every pending request in device batches.
     *
     * @param k Top-k size per request.
     * @return Responses in completion order.
     */
    std::vector<Response> processAll(std::size_t k);

    /**
     * Open-loop serving study: requests arrive as a Poisson process
     * at @p requests_per_second; the device batches whatever has
     * arrived when it goes idle (partial batches allowed).  Latency
     * percentiles include queueing delay.
     *
     * @param queries Query pool to draw from (cycled).
     * @param requests_per_second Offered load.
     * @param request_count Total requests to serve.
     * @param k Top-k per request.
     * @param seed Arrival-process seed.
     */
    std::vector<Response> runOpenLoop(
        const std::vector<std::vector<float>> &queries,
        double requests_per_second, unsigned request_count,
        std::size_t k, std::uint64_t seed = 1);

    /** Per-request latency samples (milliseconds). */
    const sim::Distribution &latencyMs() const { return latencyMs_; }

    /** Latency quantiles (milliseconds). */
    const sim::Percentiles &latencyPercentiles() const
    {
        return latencyPercentiles_;
    }

    /** Total simulated device time consumed so far. */
    sim::Tick deviceTime() const { return deviceClock_; }

  private:
    struct PendingRequest
    {
        RequestId id;
        std::vector<float> feature;
        sim::Tick enqueuedAt;
    };

    const numeric::FloatMatrix &weights_;
    xclass::BenchmarkSpec spec_;
    xclass::ApproximateClassifier classifier_;
    std::unique_ptr<EcssdSystem> system_;
    std::deque<PendingRequest> pending_;
    /** Serve the oldest <= batchSize pending requests once. */
    std::vector<Response> serveOneBatch(std::size_t k);

    RequestId nextId_ = 1;
    sim::Tick deviceClock_ = 0;
    sim::Distribution latencyMs_;
    sim::Percentiles latencyPercentiles_;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SERVER_HH
