/**
 * @file
 * A host-side serving layer over one ECSSD: applications enqueue
 * query features, the server groups them into device batches
 * (Section 4.5 processes a batch of inputs per tile sweep), runs the
 * functional screening + classification, and reports per-request
 * latency statistics.
 *
 * Production hardening: per-request deadlines (late answers complete
 * as TimedOut, already-expired requests are dropped before burning
 * device time), bounded-queue admission control (overload sheds new
 * arrivals instead of growing the queue without bound), and a
 * retry-with-backoff path for batches the device aborts under the
 * FailBatch degraded-read policy (with a screener-fallback last
 * resort so the server keeps answering on a dying device).
 *
 * Zero-downtime weight hot swap: beginRedeploy() stages a new weight
 * version alongside the serving one; the staged-redeploy state
 * machine (redeploy.hh) advances one step between served batches, so
 * staging IO yields to foreground requests.  The version flip happens
 * at a batch boundary — the server serves requests synchronously, so
 * no request is ever in flight across the flip and the drain commits
 * immediately.  A validation failure or a device fault during staging
 * rolls back automatically; the old version keeps serving and no
 * request fails.
 */

#ifndef ECSSD_ECSSD_SERVER_HH
#define ECSSD_ECSSD_SERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ecssd/api.hh"
#include "ecssd/redeploy.hh"
#include "ecssd/system.hh"
#include "sim/stats.hh"
#include "sim/traffic.hh"
#include "xclass/screening.hh"

namespace ecssd
{

/**
 * Brownout ladder rung: how far serving quality is degraded to keep
 * goodput up under overload.  Ordered from healthy to desperate;
 * the controller moves one rung at a time with hysteresis.
 */
enum class BrownoutLevel
{
    /** Normal screen + full-precision re-rank. */
    Full = 0,
    /** Candidate set capped to a fraction of the usual TopRatio
     *  budget: less flash traffic per request, bounded recall
     *  loss. */
    ReducedCandidates = 1,
    /** Serve top-k straight from the INT4 screener scores: no FP32
     *  fetch at all, screener-level recall. */
    ScreenerOnly = 2,
    /** Reject new BestEffort arrivals at admission (Gold is still
     *  served at its floor level); already-admitted requests are
     *  served ScreenerOnly, never dropped. */
    Shed = 3,
};

const char *toString(BrownoutLevel level);

/** Hysteresis-guarded brownout controller parameters. */
struct BrownoutConfig
{
    /** Worst batch sojourn (queueing + service) above which the
     *  ladder degrades one level.  0 disables the whole ladder. */
    sim::Tick enterDelay = 0;
    /** Sojourn at or below this is "healthy"; between exit and
     *  enter the level holds (the hysteresis band). */
    sim::Tick exitDelay = 0;
    /** Healthy dwell required before recovering one level (the
     *  guard that prevents enter/exit flapping). */
    sim::Tick recoveryGuard = 0;
    /** Candidate budget at ReducedCandidates, as a fraction of the
     *  normal TopRatio candidate count. */
    double reducedCandidateFraction = 0.5;
    /** Deepest degradation Gold traffic may suffer.  The default
     *  pins Gold's recall floor at screener-level: Gold is never
     *  shed by the ladder. */
    BrownoutLevel goldFloor = BrownoutLevel::ScreenerOnly;

    bool enabled() const { return enterDelay != 0; }

    /** Die fatally (sim::FatalError) on inconsistent thresholds. */
    void validate() const;
};

/** Serving-policy knobs of the InferenceServer. */
struct ServerConfig
{
    /** Per-request completion deadline measured from arrival; a
     *  request finishing later completes as TimedOut, and a request
     *  already expired when its batch forms is dropped without device
     *  work.  0 disables deadlines. */
    sim::Tick requestDeadline = 0;
    /** Admission-control bound on the pending queue; arrivals beyond
     *  it are shed immediately.  0 means unbounded. */
    std::size_t queueCapacity = 0;
    /** Device-batch retries after a FailBatch abort before the
     *  screener-fallback last resort serves the batch degraded. */
    unsigned maxBatchRetries = 2;
    /** First retry backoff; doubles on every further attempt. */
    double retryBackoffUs = 100.0;
    /**
     * Queue-delay admission target (CoDel-flavored): a BestEffort
     * arrival whose estimated sojourn — queue depth times the
     * measured per-request service EWMA — exceeds this is shed at
     * admission, bounding queueing delay instead of queue length.
     * 0 disables delay-based admission.
     */
    sim::Tick admissionTargetDelay = 0;
    /** Gold arrivals shed only past this multiple of the admission
     *  target (and first try to evict a queued BestEffort). */
    double goldAdmissionMultiplier = 2.0;
    /**
     * Dynamic batching: how long a partial batch may wait for more
     * arrivals before closing.  The batch also closes early when the
     * oldest member's deadline slack (deadline minus the estimated
     * batch service time) would otherwise be exhausted.  0 keeps the
     * eager closed-loop behaviour: serve whatever has arrived.
     */
    sim::Tick batchMaxWait = 0;
    /** Brownout ladder (disabled by default). */
    BrownoutConfig brownout;
    /**
     * Retry-backoff jitter: each backoff is scaled by a seeded
     * uniform factor in [1 - f/2, 1 + f/2], decorrelating fleet-wide
     * retry storms after a correlated fault.  0 draws nothing and is
     * bit-identical to the fixed progression.
     */
    double retryJitterFraction = 0.0;
    /** Seed of the jitter stream; give every fleet member its own. */
    std::uint64_t retryJitterSeed = 1;

    /** Die fatally (sim::FatalError) on inconsistent knobs. */
    void validate() const;
};

/** Fault/health counters of one server instance. */
struct ServerStats
{
    std::uint64_t acceptedRequests = 0;
    /** Arrivals rejected at admission (bounded queue, delay target,
     *  brownout shed, or eviction), by any cause. */
    std::uint64_t shedRequests = 0;
    /** Requests that missed their deadline (dropped or served
     *  late). */
    std::uint64_t timedOutRequests = 0;
    /** Expired requests dropped before any device work. */
    std::uint64_t droppedBeforeService = 0;
    /** Responses carrying screener-degraded rows. */
    std::uint64_t degradedResponses = 0;
    std::uint64_t okResponses = 0;
    /** Device-batch re-executions after FailBatch aborts. */
    std::uint64_t batchRetries = 0;
    /** Batches that exhausted retries and fell back to degraded
     *  service. */
    std::uint64_t exhaustedBatches = 0;
    /** Candidate rows served from the INT4 screener score. */
    std::uint64_t degradedRows = 0;

    // --- Overload control ------------------------------------------
    /** Shed arrivals by class (shedGold + shedBestEffort ==
     *  shedRequests). */
    std::uint64_t shedGold = 0;
    std::uint64_t shedBestEffort = 0;
    /** Sheds decided by the queue-delay admission target. */
    std::uint64_t admissionSheds = 0;
    /** Sheds decided by the brownout Shed rung. */
    std::uint64_t brownoutSheds = 0;
    /** Queued BestEffort requests evicted (shed) to admit a Gold
     *  arrival at a full queue. */
    std::uint64_t evictedBestEffort = 0;
    /** Highest pending-queue depth ever observed. */
    std::uint64_t queueDepthHwm = 0;
    /** Brownout ladder transitions (both directions). */
    std::uint64_t brownoutTransitions = 0;
    /** Responses served at each ladder rung. */
    std::uint64_t servedFull = 0;
    std::uint64_t servedReducedCandidates = 0;
    std::uint64_t servedScreenerOnly = 0;
};

/** The batching inference server. */
class InferenceServer
{
  public:
    using RequestId = std::uint64_t;

    /** One finished request. */
    struct Response
    {
        /** How the request left the server: the unified ecssd::Status
         *  vocabulary (Response::Status::Ok etc. keep compiling; the
         *  server only ever emits Ok / Degraded / TimedOut / Shed). */
        using Status = ecssd::Status;

        RequestId id = 0;
        xclass::ApproximateClassifier::Prediction prediction;
        /** Device-time completion of the request's batch. */
        sim::Tick completedAt = 0;
        Status status = Status::Ok;
        /** Priority class the request was admitted under. */
        sim::RequestClass cls = sim::RequestClass::Gold;
        /** Brownout rung the request was served at (Full outside
         *  brownout; meaningless for shed/dropped requests). */
        BrownoutLevel servedAt = BrownoutLevel::Full;
    };

    /**
     * @param weights The deployed L x D layer (must outlive the
     *        server).
     * @param spec Benchmark parameters.
     * @param options Device configuration.
     * @param trained_projection Optional learned projection.
     * @param server_config Serving-policy knobs (deadlines, queue
     *        bound, retry budget).
     */
    InferenceServer(const numeric::FloatMatrix &weights,
                    const xclass::BenchmarkSpec &spec,
                    const EcssdOptions &options = EcssdOptions::full(),
                    const numeric::FloatMatrix *trained_projection =
                        nullptr,
                    const ServerConfig &server_config =
                        ServerConfig{});

    /** Queue one query arriving now; returns its request id. */
    RequestId enqueue(std::vector<float> feature);

    /** Queue one query with an explicit arrival time.  @p cls is
     *  the priority class admission control sheds by; the Gold
     *  default preserves the single-class behaviour. */
    RequestId enqueueAt(
        std::vector<float> feature, sim::Tick arrival,
        sim::RequestClass cls = sim::RequestClass::Gold);

    /** Pending (not yet processed) request count. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Process every pending request in device batches.
     *
     * @param k Top-k size per request.
     * @return Responses in completion order (shed/dropped requests
     *         included, with their terminal status).
     */
    std::vector<Response> processAll(std::size_t k);

    /**
     * Open-loop serving study: requests arrive as a Poisson process
     * at @p requests_per_second; the device batches whatever has
     * arrived when it goes idle (partial batches allowed).  Latency
     * percentiles include queueing delay.
     *
     * @param queries Query pool to draw from (cycled).
     * @param requests_per_second Offered load.
     * @param request_count Total requests to serve.
     * @param k Top-k per request.
     * @param seed Arrival-process seed.
     */
    std::vector<Response> runOpenLoop(
        const std::vector<std::vector<float>> &queries,
        double requests_per_second, unsigned request_count,
        std::size_t k, std::uint64_t seed = 1);

    /**
     * Open-loop serving driven by a TrafficEngine: @p count arrivals
     * are drawn from @p engine (Poisson / diurnal / bursty, Zipf
     * user sessions, priority classes) and served under the full
     * overload-control stack — delay-based admission, class-aware
     * shedding, deadline-slack dynamic batching, and the brownout
     * ladder.  After the stream ends the server drains: the queue
     * empties, any in-flight hot swap terminates, and the brownout
     * ladder recovers to Full, so every run ends in steady state.
     *
     * @param engine Arrival source (consumed; byte-identical per
     *        seed and thread count).
     * @param count Arrivals to draw.
     * @param queries Query pool; each arrival's querySeed selects
     *        one deterministically.
     * @param k Top-k per request.
     * @return One terminal Response per arrival (served, shed, or
     *         dropped — exactly once each).
     */
    std::vector<Response> runTraffic(
        sim::TrafficEngine &engine, std::uint64_t count,
        const std::vector<std::vector<float>> &queries,
        std::size_t k);

    /** Current brownout ladder rung (Full when disabled). */
    BrownoutLevel brownoutLevel() const { return level_; }

    /** Device time spent at @p level so far (the current rung's
     *  open interval included). */
    sim::Tick brownoutDwell(BrownoutLevel level) const;

    /** Per-request latency samples (milliseconds; served requests
     *  only). */
    const sim::Distribution &latencyMs() const { return latencyMs_; }

    /** Latency quantiles (milliseconds). */
    const sim::Percentiles &latencyPercentiles() const
    {
        return latencyPercentiles_;
    }

    /** Total simulated device time consumed so far. */
    sim::Tick deviceTime() const { return deviceClock_; }

    /**
     * Advance the device clock to at least @p at (never backwards).
     * The multi-tenant scheduler time-multiplexes several servers on
     * one physical device: each tenant's server aligns to the shared
     * device clock before its quantum, so tenants observe a common
     * timeline instead of private ones.
     */
    void
    alignDeviceClock(sim::Tick at)
    {
        if (at > deviceClock_)
            deviceClock_ = at;
    }

    /**
     * Serve one scheduler quantum: the oldest <= batch-size pending
     * requests as a single device batch, plus any terminal responses
     * produced outside it (admission sheds, deadline drops).  Empty
     * when nothing was pending and nothing terminal accumulated.
     */
    std::vector<Response> serveBatch(std::size_t k);

    /** Fault/health counters. */
    const ServerStats &serverStats() const { return stats_; }

    /** The serving-policy knobs this server runs with. */
    const ServerConfig &serverConfig() const { return config_; }

    /** Device health at the server's cumulative device time. */
    ssdsim::HealthReport health() const
    {
        return system_->health(deviceClock_);
    }

    // --- Weight hot swap ------------------------------------------

    /**
     * Begin a staged hot swap to @p weights.  The swap advances one
     * state-machine step per served batch (staging chunks between
     * batches, so the IO budget yields to foreground requests) and
     * flips at a batch boundary; processAll()/runOpenLoop() finish
     * any in-flight swap after the queue empties.
     *
     * Returns RedeployActive while a swap is in flight and
     * DimensionMismatch when @p weights do not match @p spec or
     * @p spec changes the input width (queued requests could no
     * longer be served).  A swap whose staging footprint cannot fit
     * the device returns Ok and immediately rolls back
     * (RollbackReason::DramPressure) — observable via
     * redeployStatus().
     *
     * @param weights The new L x D layer (must outlive the swap).
     * @param spec The new version's benchmark parameters.
     * @param config Staging/validation policy.
     * @param trained_projection Optional learned projection.
     */
    Status beginRedeploy(
        const numeric::FloatMatrix &weights,
        const xclass::BenchmarkSpec &spec,
        const RedeployConfig &config = RedeployConfig{},
        const numeric::FloatMatrix *trained_projection = nullptr);

    /** Advance the in-flight swap one step without serving a batch
     *  (an idle server's background daemon tick).  NoRedeploy once
     *  the swap is terminal or none was begun. */
    Status redeployAdvance();

    /** Snapshot of the current (or last) hot swap. */
    RedeployStatus redeployStatus() const;

    /** True while a hot swap is between begin and terminal. */
    bool redeployActive() const;

    /** Deploy epoch of the serving version (bumped per flip). */
    std::uint64_t deployEpoch() const { return deployEpoch_; }

    /** Monotone id of the serving weight version. */
    std::uint64_t weightVersion() const { return weightVersion_; }

    /**
     * Attach (or detach, with nullptr) observability sinks.  The
     * registry receives live "server.*" counters (admission, shed,
     * deadline, retry outcomes), the server.queue_depth gauge, and
     * the server.latency_ms end-to-end histogram; both sinks are also
     * forwarded to the underlying system (pipeline spans/counters,
     * flash busy intervals).  Recording never alters serving
     * behaviour or timing.
     */
    void attachObservability(sim::MetricsRegistry *metrics,
                             sim::SpanTracer *spans);

    /** Snapshot the ServerStats counters as "server.*" gauges. */
    void publishMetrics(sim::MetricsRegistry &registry) const;

  private:
    struct PendingRequest
    {
        RequestId id;
        std::vector<float> feature;
        sim::Tick enqueuedAt;
        sim::RequestClass cls = sim::RequestClass::Gold;
    };

    /** True when @p request missed its deadline by tick @p at. */
    bool expiredBy(const PendingRequest &request, sim::Tick at) const;

    /** Emit the terminal Shed response for a rejected arrival. */
    void shedRequest(RequestId id, sim::Tick arrival,
                     sim::RequestClass cls);

    /** Shed the youngest queued BestEffort request to admit a Gold
     *  arrival; false when none is queued. */
    bool evictYoungestBestEffort();

    /** Effective serving rung for one request under the current
     *  ladder level and the request's class floor. */
    BrownoutLevel servingLevelFor(sim::RequestClass cls) const;

    /** Feed one served batch's worst sojourn to the brownout
     *  controller (hysteresis + recovery guard). */
    void noteBatchSojourn(sim::Tick oldest_enqueue,
                          sim::Tick finished);

    /** Move the ladder to @p level at @p now, accounting dwell. */
    void setBrownoutLevel(BrownoutLevel level, sim::Tick now);

    /** One idle recovery step: with an empty queue and no traffic,
     *  dwell out the guard and climb one rung toward Full. */
    void idleRecoverStep();

    /** When a partial batch stops waiting for more arrivals:
     *  bounded by batchMaxWait and the oldest member's deadline
     *  slack.  maxTick when the queue is empty. */
    sim::Tick batchCloseAt() const;

    /**
     * Run the device-timing pass for one batch, retrying FailBatch
     * aborts with exponential backoff and falling back to degraded
     * service when the retry budget is exhausted.
     *
     * @param candidates Union candidate rows of the batch.
     * @param[out] backoff Accumulated retry backoff to add to the
     *        batch completion time.
     */
    accel::BatchTiming timeBatchWithRetries(
        const std::vector<std::uint64_t> &candidates,
        sim::Tick &backoff);

    /** Everything one server hot swap stages until it terminates. */
    struct StagedSwap
    {
        RedeployMachine machine;
        RedeployConfig config;
        const numeric::FloatMatrix *weights = nullptr;
        xclass::BenchmarkSpec spec;
        const numeric::FloatMatrix *projection = nullptr;
        StagingLedger ledger;
        /** Built once staging completes. */
        std::unique_ptr<xclass::ApproximateClassifier> classifier;
        std::unique_ptr<EcssdSystem> system;
        unsigned warmed = 0;
        unsigned validated = 0;
        double recallSum = 0.0;
        double recall = 1.0;
        std::uint64_t oldEpoch = 0;
        std::uint64_t newEpoch = 0;
        std::uint64_t versionId = 0;
    };

    /** Advance the in-flight swap one step (between batches). */
    void stepRedeploy();

    /** Flip to the staged version at a batch boundary and commit. */
    void flipSwap();

    /** Roll the in-flight swap back; the old version keeps serving. */
    void rollbackSwap(RollbackReason reason);

    const numeric::FloatMatrix *weights_;
    xclass::BenchmarkSpec spec_;
    EcssdOptions options_;
    ServerConfig config_;
    /** Host-compute pool shared by the functional classifier
     *  (options.threads workers); declared before classifier_ so it
     *  outlives every parallel consumer. */
    std::unique_ptr<sim::ThreadPool> threadPool_;
    std::unique_ptr<xclass::ApproximateClassifier> classifier_;
    std::unique_ptr<EcssdSystem> system_;
    /** The in-flight (or last terminal) hot swap. */
    std::unique_ptr<StagedSwap> swap_;
    std::uint64_t deployEpoch_ = 1;
    std::uint64_t weightVersion_ = 1;
    /** Recent request features (ring): hot-swap warm-up/validation
     *  replay material. */
    std::vector<std::vector<float>> recentQueries_;
    std::size_t recentCursor_ = 0;
    std::deque<PendingRequest> pending_;
    /** Terminal responses produced outside a served batch (shed at
     *  admission, dropped at expiry); drained by processAll /
     *  runOpenLoop. */
    std::vector<Response> unservedResponses_;
    /** Serve the oldest <= batchSize pending requests once. */
    std::vector<Response> serveOneBatch(std::size_t k);

    /** Record one served-request latency/outcome when attached. */
    void recordResponse(Response::Status status, double latency_ms);

    RequestId nextId_ = 1;
    sim::Tick deviceClock_ = 0;
    sim::Distribution latencyMs_;
    sim::Percentiles latencyPercentiles_;
    ServerStats stats_;
    // --- Overload-control state ------------------------------------
    /** Current brownout rung. */
    BrownoutLevel level_ = BrownoutLevel::Full;
    /** When the ladder entered the current rung. */
    sim::Tick levelSince_ = 0;
    /** Closed dwell per rung (current rung's open interval is added
     *  by brownoutDwell()). */
    sim::Tick levelDwell_[4] = {0, 0, 0, 0};
    /** Start of the current healthy streak; maxTick = none. */
    sim::Tick healthySince_ = sim::maxTick;
    /** EWMA of per-request device service time (ticks); admission's
     *  sojourn estimate and the batch slack reserve. */
    sim::Tick ewmaServiceTick_ = 0;
    /** EWMA of whole-batch service time (ticks). */
    sim::Tick ewmaBatchTick_ = 0;
    /** Seeded retry-backoff jitter stream (never advanced when
     *  retryJitterFraction == 0). */
    sim::Rng retryJitterRng_;
    /** Lifetime hot-swap outcome counts. */
    std::uint64_t redeployCommits_ = 0;
    std::uint64_t redeployRollbacks_ = 0;
    /** Optional observability sinks (null = uninstrumented); kept so
     *  an epoch flip can re-instrument the new system. */
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
};

} // namespace ecssd

#endif // ECSSD_ECSSD_SERVER_HH
