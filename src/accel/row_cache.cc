#include "row_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{
namespace accel
{

namespace
{

/** Frequency saturation bound (keeps priority arithmetic exact). */
constexpr std::uint32_t maxFrequency = 1u << 30;

} // namespace

RowCache::RowCache(const CacheConfig &config,
                   std::uint64_t group_bytes,
                   std::uint64_t group_count,
                   std::function<double(std::uint64_t)> hot_degree)
    : config_(config), groupBytes_(group_bytes),
      hotDegree_(std::move(hot_degree))
{
    ECSSD_ASSERT(config.enabled(), "RowCache built with zero capacity");
    ECSSD_ASSERT(config.associativity > 0,
                 "RowCache associativity must be positive");
    ECSSD_ASSERT(group_bytes > 0, "RowCache group bytes must be positive");
    (void)group_count;

    std::uint64_t entries = config.capacityBytes / group_bytes;
    entries = std::max<std::uint64_t>(1, entries);
    ways_ = static_cast<unsigned>(std::min<std::uint64_t>(
        config.associativity, entries));
    sets_ = std::max<std::uint64_t>(1, entries / ways_);
    entries_.resize(sets_ * ways_);

    // Age the frequency counts every few full-cache-turnovers' worth
    // of lookups so that the recent past dominates admission without
    // making the history window depend on wall-clock anything.
    decayInterval_ = std::max<std::uint64_t>(1024, 8 * sets_ * ways_);
}

double
RowCache::priority(std::uint64_t group) const
{
    const auto it = frequency_.find(group);
    const double freq =
        it == frequency_.end() ? 0.0 : static_cast<double>(it->second);
    // The hot-degree seed lives in [0, 1]: it breaks ties among
    // equally-frequent groups and bootstraps admission before any
    // frequency has been observed.
    return freq + (hotDegree_ ? hotDegree_(group) : 0.0);
}

std::uint64_t
RowCache::blockKeyOf(const ssdsim::PhysicalPage &ppa) const
{
    return (static_cast<std::uint64_t>(ppa.channel) << 48)
        | (static_cast<std::uint64_t>(ppa.die) << 32)
        | (static_cast<std::uint64_t>(ppa.plane) << 24)
        | static_cast<std::uint64_t>(ppa.block);
}

void
RowCache::decayFrequencies()
{
    for (auto it = frequency_.begin(); it != frequency_.end();) {
        it->second /= 2;
        if (it->second == 0)
            it = frequency_.erase(it);
        else
            ++it;
    }
}

bool
RowCache::lookup(std::uint64_t group, std::uint32_t rows)
{
    ++accessCounter_;
    if (accessCounter_ % decayInterval_ == 0)
        decayFrequencies();
    std::uint32_t &freq = frequency_[group];
    if (freq < maxFrequency)
        ++freq;

    const std::uint64_t set = group % sets_;
    Entry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].group == group) {
            ++stats_.hits;
            if (flashLost(group))
                stats_.avoidedDegradedRows += rows;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
RowCache::admit(std::uint64_t group,
                const std::vector<ssdsim::PhysicalPage> &pages)
{
    const std::uint64_t set = group % sets_;
    Entry *base = &entries_[set * ways_];

    Entry *slot = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].group == group)
            return false; // already resident
        if (!base[w].valid && slot == nullptr)
            slot = &base[w];
    }

    if (slot == nullptr) {
        // Full set: pick the lowest-priority victim, oldest first on
        // ties (both criteria are functions of deterministic state).
        Entry *victim = &base[0];
        double victim_priority = priority(victim->group);
        for (unsigned w = 1; w < ways_; ++w) {
            const double p = priority(base[w].group);
            if (p < victim_priority
                || (p == victim_priority
                    && base[w].insertSeq < victim->insertSeq)) {
                victim = &base[w];
                victim_priority = p;
            }
        }
        if (config_.admission == CacheConfig::Admission::HotDegree
            && priority(group) <= victim_priority) {
            ++stats_.admissionRejects;
            return false;
        }
        ++stats_.evictions;
        --occupancy_;
        slot = victim;
    }

    slot->group = group;
    slot->valid = true;
    slot->insertSeq = insertCounter_++;
    slot->blockKeys.clear();
    for (const ssdsim::PhysicalPage &ppa : pages)
        slot->blockKeys.push_back(blockKeyOf(ppa));
    ++occupancy_;
    ++stats_.insertions;
    return true;
}

void
RowCache::markFlashLost(std::uint64_t group)
{
    lostGroups_.insert(group);
}

void
RowCache::invalidatePhysical(const ssdsim::PhysicalPage &ppa)
{
    ++stats_.relocationProbes;
    const std::uint64_t key = blockKeyOf(ppa);
    for (Entry &entry : entries_) {
        if (!entry.valid)
            continue;
        const auto hit = std::find(entry.blockKeys.begin(),
                                   entry.blockKeys.end(), key);
        if (hit == entry.blockKeys.end())
            continue;
        entry.valid = false;
        entry.blockKeys.clear();
        --occupancy_;
        ++stats_.invalidations;
    }
}

void
RowCache::invalidateAll()
{
    for (Entry &entry : entries_) {
        entry.valid = false;
        entry.blockKeys.clear();
    }
    occupancy_ = 0;
    frequency_.clear();
    lostGroups_.clear();
    accessCounter_ = 0;
}

void
RowCache::publishMetrics(sim::MetricsRegistry &registry) const
{
    registry.gaugeSet("cache.occupancy",
                      static_cast<double>(occupancy_));
    registry.gaugeSet("cache.capacity_entries",
                      static_cast<double>(entries_.size()));
    registry.gaugeSet("cache.group_bytes",
                      static_cast<double>(groupBytes_));
    registry.gaugeSet("cache.insertions",
                      static_cast<double>(stats_.insertions));
    registry.gaugeSet("cache.evictions",
                      static_cast<double>(stats_.evictions));
    registry.gaugeSet("cache.admission_rejects",
                      static_cast<double>(stats_.admissionRejects));
    registry.gaugeSet("cache.invalidations",
                      static_cast<double>(stats_.invalidations));
    registry.gaugeSet("cache.relocation_probes",
                      static_cast<double>(stats_.relocationProbes));
    registry.gaugeSet("cache.avoided_degraded_rows",
                      static_cast<double>(stats_.avoidedDegradedRows));
    registry.gaugeSet("cache.hit_rate", stats_.hitRate());
}

} // namespace accel
} // namespace ecssd
