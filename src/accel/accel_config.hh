/**
 * @file
 * Configuration of the inserted accelerator's performance model.
 *
 * The compute rates derive from the circuit model: the FP32 array
 * area is fixed at the Table 4 allocation (64 alignment-free MACs),
 * and alternative datapaths (naive / SK Hynix) fit however many MACs
 * that same silicon area allows, which is exactly the paper's
 * iso-area comparison (Section 4.2: naive reaches only ~29 GFLOPS
 * where alignment-free reaches 50).
 */

#ifndef ECSSD_ACCEL_ACCEL_CONFIG_HH
#define ECSSD_ACCEL_ACCEL_CONFIG_HH

#include <string>

#include "accel/row_cache.hh"
#include "circuit/accelerator_model.hh"

namespace ecssd
{
namespace accel
{

/** On-flash weight precision (CFP16 is this repo's extension). */
enum class WeightPrecision
{
    /** The paper's 32-bit compensation format. */
    Cfp32,
    /** Half-width compensation format: half the flash traffic at
     *  FP16-class accuracy. */
    Cfp16,
};

/**
 * What the pipeline does when a candidate row's FP32 page comes back
 * uncorrectable from flash.
 */
enum class DegradedReadPolicy
{
    /** Abort: the batch is marked failed and the caller retries. */
    FailBatch,
    /**
     * Degrade per row: the affected rows keep their INT4 screener
     * score (already computed in the screening stage) instead of the
     * full-precision score.  Costs nothing extra; quality drops only
     * for the lost rows.
     */
    ScreenerFallback,
    /**
     * Re-fetch the lost page from the host's DRAM copy of the weight
     * matrix over the host link (latency penalty, full precision
     * preserved).
     */
    HostRefetch,
};

/** Short policy name for describe()/logs. */
inline const char *
toString(DegradedReadPolicy policy)
{
    switch (policy) {
    case DegradedReadPolicy::FailBatch:
        return "fail-batch";
    case DegradedReadPolicy::ScreenerFallback:
        return "screener-fallback";
    case DegradedReadPolicy::HostRefetch:
        return "host-refetch";
    }
    return "?";
}

/** Performance-relevant accelerator parameters. */
struct AccelConfig
{
    /** FP32 datapath variant. */
    circuit::FpMacKind fpKind = circuit::FpMacKind::AlignmentFree;
    /** INT4 MAC count (Table 2). */
    unsigned int4Macs = 256;
    /** Stage overlap (ping-pong buffers + INT4/FP32 pipelining). */
    bool overlapStages = true;
    /** On-flash weight precision for the candidate rows. */
    WeightPrecision weightPrecision = WeightPrecision::Cfp32;
    /** Reaction to uncorrectable candidate-row reads. */
    DegradedReadPolicy degradedPolicy =
        DegradedReadPolicy::ScreenerFallback;
    /** Accelerator clock. */
    double frequencyHz = circuit::acceleratorFrequencyHz;
    /**
     * Host-compute worker threads for the functional tier (screener
     * scoring, candidate re-rank, quantization preprocessing).
     * Purely a wall-clock knob: the deterministic parallel engine
     * (sim::ThreadPool) guarantees bit-identical results for any
     * value, and simulated time never depends on it.
     */
    unsigned threads = 1;
    /**
     * Host-compute ISA request for the functional tier
     * ("auto"/"scalar"/"vector"/"avx2"/"avx512"; see
     * numeric/kernels.hh).  Like threads, purely a host wall-clock
     * knob: every level is bit-identical and the simulated pipeline
     * timing never depends on it — the modeled device has its own
     * fixed MAC arrays regardless of what the host runs.
     */
    std::string hostIsa = "auto";

    /** Table 2 staging buffer sizes (bytes). */
    std::uint64_t int4WeightBufferBytes = 128 * 1024;
    std::uint64_t fp32WeightBufferBytes = 400 * 1024;

    /** DRAM hot-row candidate cache (disabled by default: the zero
     *  capacity keeps the pipeline bit-identical to a cache-less
     *  build). */
    CacheConfig cache;

    /**
     * Optional explicit compute rates (GFLOPS / GOPS); zero means
     * "derive from the circuit model".  Baseline architectures with
     * different compute organizations (e.g. GenStore's per-channel
     * accelerators) set these directly.
     */
    double fp32GflopsOverride = 0.0;
    double int4GopsOverride = 0.0;

    /** Silicon area reserved for the FP32 array (Table 4's 64
     *  alignment-free MACs). */
    double
    fp32ArrayAreaMm2() const
    {
        return circuit::macArray(circuit::alignmentFreeFp32Mac(), 64)
            .areaMm2();
    }

    /** FP32 MACs of the chosen datapath fitting that area. */
    unsigned
    fp32Macs() const
    {
        if (fpKind == circuit::FpMacKind::AlignmentFree)
            return 64;
        return circuit::macsInArea(circuit::fp32MacOf(fpKind),
                                   fp32ArrayAreaMm2());
    }

    /** Peak FP32 throughput in GFLOPS. */
    double
    fp32Gflops() const
    {
        if (fp32GflopsOverride > 0.0)
            return fp32GflopsOverride;
        return circuit::peakGflops(fp32Macs(), frequencyHz);
    }

    /** Peak INT4 throughput in GOPS. */
    double
    int4Gops() const
    {
        if (int4GopsOverride > 0.0)
            return int4GopsOverride;
        return circuit::peakGflops(int4Macs, frequencyHz);
    }
};

} // namespace accel
} // namespace ecssd

#endif // ECSSD_ACCEL_ACCEL_CONFIG_HH
