/**
 * @file
 * Sources of per-batch candidate row sets for the inference pipeline.
 *
 * The pipeline is agnostic to where candidates come from: the
 * functional screener (small benchmarks), the statistical trace
 * generator (10M-100M benchmarks), or "all rows" for architectures
 * without the approximate screening algorithm.
 */

#ifndef ECSSD_ACCEL_CANDIDATE_SOURCE_HH
#define ECSSD_ACCEL_CANDIDATE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "xclass/workload.hh"

namespace ecssd
{
namespace accel
{

/** Produces the candidate rows of each inference batch. */
class CandidateSource
{
  public:
    virtual ~CandidateSource() = default;

    /** Total row count of the classification layer. */
    virtual std::uint64_t rows() const = 0;

    /** Sorted candidate rows of the next batch. */
    virtual std::vector<std::uint64_t> nextBatch() = 0;
};

/** Every row is a candidate: the no-screening (-N) configurations. */
class AllRowsSource : public CandidateSource
{
  public:
    explicit AllRowsSource(std::uint64_t rows) : rows_(rows) {}

    std::uint64_t rows() const override { return rows_; }

    std::vector<std::uint64_t>
    nextBatch() override
    {
        std::vector<std::uint64_t> all(rows_);
        std::iota(all.begin(), all.end(), 0);
        return all;
    }

  private:
    std::uint64_t rows_;
};

/** Statistical trace source for the large synthetic benchmarks. */
class TraceSource : public CandidateSource
{
  public:
    explicit TraceSource(const xclass::BenchmarkSpec &spec,
                         std::uint64_t seed = 1,
                         double predictor_noise = 0.25)
        : trace_(spec, seed, predictor_noise)
    {}

    std::uint64_t rows() const override
    {
        return trace_.spec().categories;
    }

    std::vector<std::uint64_t>
    nextBatch() override
    {
        return trace_.drawCandidates();
    }

    /** The underlying trace (hotness oracle for layout building). */
    xclass::CandidateTrace &trace() { return trace_; }

  private:
    xclass::CandidateTrace trace_;
};

/**
 * Fixed list-of-batches source (e.g., candidate sets produced by the
 * functional screener on real queries); cycles when exhausted.
 */
class ListSource : public CandidateSource
{
  public:
    ListSource(std::uint64_t rows,
               std::vector<std::vector<std::uint64_t>> batches)
        : rows_(rows), batches_(std::move(batches))
    {}

    std::uint64_t rows() const override { return rows_; }

    std::vector<std::uint64_t>
    nextBatch() override
    {
        if (batches_.empty())
            return {};
        const std::vector<std::uint64_t> &batch =
            batches_[cursor_ % batches_.size()];
        ++cursor_;
        return batch;
    }

  private:
    std::uint64_t rows_;
    std::vector<std::vector<std::uint64_t>> batches_;
    std::size_t cursor_ = 0;
};

} // namespace accel
} // namespace ecssd

#endif // ECSSD_ACCEL_CANDIDATE_SOURCE_HH
