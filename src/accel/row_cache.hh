/**
 * @file
 * Hot-row FP32 candidate cache in SSD DRAM.
 *
 * The heterogeneous layout (Section 4.3) dedicates SSD DRAM to the
 * INT4 screener matrix, yet every FP32 candidate row is re-fetched
 * from flash (8 x 1 GB/s) on every batch.  The learning-based
 * interleaving framework already computes exactly the signal needed
 * to know which rows will be fetched again: the per-row hot degree
 * plus the observed candidate frequency.  This cache turns that
 * signal into fewer flash reads: after the screener is resident, the
 * remaining DRAM capacity caches recently/frequently-candidate weight
 * rows at page-group granularity, and the pipeline serves cache hits
 * from the 12.8 GB/s DRAM timeline instead of the flash channels.
 *
 * Determinism: every cache operation runs on the serial timing path
 * of the pipeline (the host-compute thread pool never touches it),
 * so results and simulated time are bit-identical for any thread
 * count; a zero-capacity configuration builds no cache at all and is
 * bit-identical to a build without this subsystem.
 */

#ifndef ECSSD_ACCEL_ROW_CACHE_HH
#define ECSSD_ACCEL_ROW_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/metrics.hh"
#include "ssdsim/address.hh"

namespace ecssd
{
namespace accel
{

/** Configuration of the DRAM hot-row candidate cache. */
struct CacheConfig
{
    /** How misses are admitted into a full set. */
    enum class Admission
    {
        /** Every miss is admitted, evicting the set's lowest-priority
         *  entry. */
        AdmitAll,
        /** A miss is admitted only when its priority (hot-degree seed
         *  plus observed candidate frequency) beats the would-be
         *  victim's: cold scan traffic cannot flush the hot set. */
        HotDegree,
    };

    /**
     * DRAM bytes granted to the cache (after screener residency).
     * 0 disables the cache entirely: no cache object is built and
     * the pipeline behaves bit-identically to a cache-less build.
     */
    std::uint64_t capacityBytes = 0;
    Admission admission = Admission::HotDegree;
    /** Ways per set of the set-associative structure. */
    unsigned associativity = 8;

    bool enabled() const { return capacityBytes > 0; }
};

/** Short admission-policy name for describe()/logs. */
inline const char *
toString(CacheConfig::Admission admission)
{
    switch (admission) {
    case CacheConfig::Admission::AdmitAll:
        return "admit-all";
    case CacheConfig::Admission::HotDegree:
        return "hot-degree";
    }
    return "?";
}

/** Activity counters of one cache instance. */
struct RowCacheStats
{
    /** Lookups served from DRAM (group granularity). */
    std::uint64_t hits = 0;
    /** Lookups that went to flash. */
    std::uint64_t misses = 0;
    /** Groups admitted after a miss. */
    std::uint64_t insertions = 0;
    /** Resident groups displaced by an admission. */
    std::uint64_t evictions = 0;
    /** Misses rejected by the admission policy (set stayed as-is). */
    std::uint64_t admissionRejects = 0;
    /** Entries dropped because their flash block was relocated
     *  (patrol scrub / wear leveling / GC). */
    std::uint64_t invalidations = 0;
    /** Relocation notifications examined (whether or not a resident
     *  entry matched). */
    std::uint64_t relocationProbes = 0;
    /** Candidate rows served from DRAM whose flash copy had
     *  previously come back uncorrectable: degradation avoided. */
    std::uint64_t avoidedDegradedRows = 0;
    /** Insertions made by an explicit warm-up pass (online-redeploy
     *  warming) rather than by demand misses; a subset of
     *  insertions. */
    std::uint64_t warmInsertions = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Set-associative cache of FP32/CFP16 weight page groups in SSD DRAM.
 *
 * Keys are page-group ids (the pipeline's fetch unit: the rows packed
 * into one flash page set).  Admission/eviction priority is the hot-
 * degree seed from the layout strategy's predictor plus a decayed
 * observed-candidate-frequency count, mirroring the paper's
 * learning-based interleaving at the caching layer.  The cache tracks
 * the flash blocks backing each resident group so relocations (patrol
 * scrub, wear leveling) invalidate the stale DRAM copy.
 */
class RowCache
{
  public:
    /**
     * @param config Capacity/admission/associativity knobs
     *        (config.enabled() must be true).
     * @param group_bytes Stored bytes of one page group.
     * @param group_count Total page groups of the deployed layer.
     * @param hot_degree Per-group hot-degree seed in [0, 1] from the
     *        layout strategy's predictor (empty = all zero).
     */
    RowCache(const CacheConfig &config, std::uint64_t group_bytes,
             std::uint64_t group_count,
             std::function<double(std::uint64_t)> hot_degree);

    const CacheConfig &config() const { return config_; }

    /** Total entry slots (capacityBytes / groupBytes, >= 1). */
    std::uint64_t entryCount() const { return entries_.size(); }

    /** Currently valid entries. */
    std::uint64_t occupancy() const { return occupancy_; }

    /** Stored bytes of one entry. */
    std::uint64_t groupBytes() const { return groupBytes_; }

    /** DRAM bytes of the currently resident entries.  The per-tenant
     *  quota accounting reads this: a tenant's cache can never hold
     *  more than entryCount() * groupBytes() <= its byte quota, so
     *  residentBytes() <= the quota at all times. */
    std::uint64_t
    residentBytes() const
    {
        return occupancy_ * groupBytes_;
    }

    /** DRAM bytes the cache structure can ever hold (its byte quota
     *  rounded down to whole page groups). */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(entries_.size())
            * groupBytes_;
    }

    /**
     * Look up @p group, recording the hit/miss and bumping its
     * observed candidate frequency.
     *
     * @param group Page-group id.
     * @param rows Candidate rows wanted from the group (for the
     *        avoided-degradation accounting).
     * @return True on a hit (the group's rows are DRAM-resident).
     */
    bool lookup(std::uint64_t group, std::uint32_t rows);

    /**
     * Offer @p group for admission after a miss fetched it cleanly.
     *
     * @param group Page-group id.
     * @param pages The flash pages backing the group (their blocks
     *        are tracked for relocation invalidation).
     * @return True when the group was inserted (the caller then
     *         charges the DRAM fill transfer to the timing model).
     */
    bool admit(std::uint64_t group,
               const std::vector<ssdsim::PhysicalPage> &pages);

    /**
     * Record that @p group's flash copy returned uncorrectable: a
     * later DRAM hit on it counts as avoided degradation.
     */
    void markFlashLost(std::uint64_t group);

    /** True when @p group's flash copy ever failed ECC. */
    bool
    flashLost(std::uint64_t group) const
    {
        return lostGroups_.count(group) != 0;
    }

    /**
     * Invalidate any resident entry backed by @p ppa's flash block
     * (the FTL relocation callback: the DRAM copy may be stale once
     * the block is rewritten).
     */
    void invalidatePhysical(const ssdsim::PhysicalPage &ppa);

    /** Drop every entry (weight redeployment). */
    void invalidateAll();

    /** Count one admit() as warm-up-driven (caller invokes it right
     *  after a successful admit from a warming pass). */
    void noteWarmInsertion() { ++stats_.warmInsertions; }

    /**
     * The decayed observed candidate-frequency counters
     * (page group -> count): the background re-layout task's
     * divergence feed — what the layer's traffic *actually* touched,
     * versus what the layout's hot-degree predictor promised.
     * Iteration order is unspecified (hash map); consumers that need
     * determinism must sort by group id.
     */
    const std::unordered_map<std::uint64_t, std::uint32_t> &
    observedFrequencies() const
    {
        return frequency_;
    }

    const RowCacheStats &stats() const { return stats_; }

    /**
     * Snapshot cache state as "cache.*" gauges (occupancy, capacity,
     * insert/evict/invalidate counters, hit-rate).  The hit/miss
     * counters themselves are recorded live by the pipeline.
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

  private:
    struct Entry
    {
        std::uint64_t group = 0;
        bool valid = false;
        /** Monotone insertion sequence (eviction tie-break). */
        std::uint64_t insertSeq = 0;
        /** Dense block keys of the backing flash pages. */
        std::vector<std::uint64_t> blockKeys;
    };

    /** Current admission/eviction priority of @p group. */
    double priority(std::uint64_t group) const;

    /** Dense block key of @p ppa (channel/die/plane/block). */
    std::uint64_t blockKeyOf(const ssdsim::PhysicalPage &ppa) const;

    /** Halve all frequency counts, dropping zeros (TinyLFU-style
     *  aging keeps the footprint bounded and the recent past
     *  dominant). */
    void decayFrequencies();

    CacheConfig config_;
    std::uint64_t groupBytes_;
    std::function<double(std::uint64_t)> hotDegree_;
    std::uint64_t sets_;
    unsigned ways_;
    std::vector<Entry> entries_; // set-major, sets_ * ways_
    std::uint64_t occupancy_ = 0;
    std::uint64_t insertCounter_ = 0;
    /** Observed candidate-frequency counts (decayed). */
    std::unordered_map<std::uint64_t, std::uint32_t> frequency_;
    std::uint64_t accessCounter_ = 0;
    std::uint64_t decayInterval_;
    /** Groups whose flash copy ever failed ECC. */
    std::unordered_set<std::uint64_t> lostGroups_;
    RowCacheStats stats_;
};

} // namespace accel
} // namespace ecssd

#endif // ECSSD_ACCEL_ROW_CACHE_HH
