#include "pipeline.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace ecssd
{
namespace accel
{

namespace
{

/** Compute demand in ticks for @p ops at @p giga_ops_per_s. */
sim::Tick
computeTicks(double ops, double giga_ops_per_s)
{
    return static_cast<sim::Tick>(
        ops / (giga_ops_per_s * 1e9) * sim::tickPerS + 0.5);
}

} // namespace

InferencePipeline::InferencePipeline(
    const xclass::BenchmarkSpec &spec, const AccelConfig &config,
    ssdsim::SsdDevice &ssd, const layout::LayoutStrategy &strategy,
    Int4Placement int4_placement)
    : spec_(spec), config_(config), ssd_(ssd), strategy_(strategy),
      int4Placement_(int4_placement)
{
    // The placement unit is one flash page: rows narrower than a
    // page share a page group, and the strategy is queried by group
    // id (a strategy built over raw rows still works, since the
    // group count never exceeds the row count).
    rowsPerPage_ = std::max<std::uint64_t>(
        1, ssd.config().pageBytes / weightRowBytes());
    ECSSD_ASSERT(strategy.rows() >= pageGroupCount(),
                 "layout does not cover the weight page groups");
    ECSSD_ASSERT(strategy.channels() == ssd.config().channels,
                 "layout/SSD channel count mismatch");

    // Tile size: as many rows as the INT4 staging buffer holds.
    const std::uint64_t bytes_per_row =
        std::max<std::uint64_t>(1, spec.shrunkDim() / 2);
    tileRows_ = std::max<std::uint64_t>(
        1, config.int4WeightBufferBytes / bytes_per_row);
    tileRows_ = std::min(tileRows_, spec.categories);

    pagesPerRow_ = static_cast<unsigned>(
        (weightRowBytes() + ssd.config().pageBytes - 1)
        / ssd.config().pageBytes);

    if (config_.cache.enabled()) {
        // Entry granularity is one page group's useful row bytes (the
        // fetch unit of the FP32 stage).  The admission priority is
        // seeded from the layout strategy's hot-degree predictor: the
        // same learned popularity signal that drives interleaving.
        const std::uint64_t group_bytes =
            rowsPerPage_ * weightRowBytes();
        const layout::LayoutStrategy *strategy_ptr = &strategy_;
        cache_ = std::make_unique<RowCache>(
            config_.cache, group_bytes, pageGroupCount(),
            [strategy_ptr](std::uint64_t group) {
                return strategy_ptr->hotDegreeOf(group);
            });
    }
}

std::uint64_t
InferencePipeline::tileCount() const
{
    return (spec_.categories + tileRows_ - 1) / tileRows_;
}

std::uint64_t
InferencePipeline::pageGroupCount() const
{
    return (spec_.categories + rowsPerPage_ - 1) / rowsPerPage_;
}

std::uint64_t
InferencePipeline::weightRowBytes() const
{
    // CFP16 halves the stored row (2 bytes per value).
    return config_.weightPrecision == WeightPrecision::Cfp16
        ? spec_.hiddenDim * 2ULL
        : spec_.rowBytes();
}

std::size_t
InferencePipeline::pipelineDepth() const
{
    // Expected candidate bytes staged per tile; the -N architectures
    // fetch every row of the tile.
    const double ratio =
        screening_ ? spec_.candidateRatio : 1.0;
    const double tile_bytes = static_cast<double>(tileRows_) * ratio
        * static_cast<double>(pagesPerRow_)
        * ssd_.config().pageBytes;
    const double slots =
        static_cast<double>(ssd_.config().dataBufferBytes) / 2.0
        / std::max(tile_bytes, 1.0);
    return static_cast<std::size_t>(std::max(2.0, slots));
}

sim::Tick
InferencePipeline::fetchInt4Tile(std::uint64_t tile,
                                 sim::Tick issue_at,
                                 BatchTiming &timing)
{
    const std::uint64_t first = tile * tileRows_;
    const std::uint64_t rows =
        std::min<std::uint64_t>(tileRows_, spec_.categories - first);
    const std::uint64_t weight_bytes = rows * spec_.shrunkDim() / 2;
    // Index + physical-address metadata of the tile's FP32 rows
    // travels with the INT4 weights (Section 4.5); it always comes
    // from the DRAM-resident tables.
    const std::uint64_t meta_bytes = rows * 8;

    sim::Tick done = ssd_.dram().stream(meta_bytes, issue_at);

    if (int4Placement_ == Int4Placement::Dram) {
        done = std::max(done,
                        ssd_.dram().stream(weight_bytes, issue_at));
    } else {
        // Homogeneous layout: the INT4 tile lives in flash, striped
        // round-robin over channels; these reads contend with FP32
        // candidate reads on the same channel buses.
        const std::uint64_t pages =
            (weight_bytes + ssd_.config().pageBytes - 1)
            / ssd_.config().pageBytes;
        for (std::uint64_t p = 0; p < pages; ++p) {
            ssdsim::PhysicalPage ppa;
            const std::uint64_t seq =
                tile * pages + p; // global stripe cursor
            ppa.channel = static_cast<unsigned>(
                seq % ssd_.config().channels);
            ppa.die = static_cast<unsigned>(
                (seq / ssd_.config().channels)
                % ssd_.config().diesPerChannel);
            ppa.plane = 0;
            ppa.block = static_cast<unsigned>(
                (seq >> 8) % ssd_.config().blocksPerPlane);
            ppa.page = static_cast<unsigned>(
                seq % ssd_.config().pagesPerBlock);
            done = std::max(done,
                            ssd_.flash().readPage(ppa, issue_at));
            ++timing.int4PagesRead;
        }
    }
    return done;
}

sim::Tick
InferencePipeline::fetchFp32Rows(
    std::span<const std::uint64_t> rows, sim::Tick issue_at,
    sim::Tick transfer_gate, BatchTiming &timing)
{
    if (rows.empty())
        return std::max(issue_at, transfer_gate);

    // Rows narrower than a page share pages; a page read covers
    // every candidate row packed into it, so dedupe by page group,
    // address the strategy at group granularity, and stream only
    // the wanted rows' bytes over the bus (partial-page transfer).
    sim::Tick done = issue_at;
    std::size_t i = 0;
    while (i < rows.size()) {
        const std::uint64_t group = rows[i] / rowsPerPage_;
        std::uint32_t rows_wanted = 0;
        while (i < rows.size() && rows[i] / rowsPerPage_ == group) {
            ++rows_wanted;
            ++i;
        }
        const std::uint64_t bytes_wanted = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(rows_wanted)
                * weightRowBytes(),
            static_cast<std::uint64_t>(pagesPerRow_)
                * ssd_.config().pageBytes);

        // DRAM hot-row cache: a resident group serves its candidate
        // rows over the DRAM port (12.8 GB/s) with no flash traffic.
        // A hit on a group whose flash copy previously failed ECC
        // serves cleanly (avoided degradation, counted by the cache).
        if (cache_ && cache_->lookup(group, rows_wanted)) {
            const sim::Tick start = std::max(issue_at, transfer_gate);
            const sim::Tick hit_done =
                ssd_.dram().stream(bytes_wanted, start);
            done = std::max(done, hit_done);
            timing.cacheHitRows += rows_wanted;
            timing.cacheHitTime += hit_done - start;
            continue;
        }

        const sim::Tick group_start = std::max(issue_at, transfer_gate);
        sim::Tick group_done = group_start;
        std::uint64_t bytes_left = bytes_wanted;
        bool group_lost = false;
        bool group_unreadable = false;
        std::vector<ssdsim::PhysicalPage> group_pages;
        for (unsigned p = 0; p < pagesPerRow_; ++p) {
            const ssdsim::PhysicalPage ppa = layout::pageOfRow(
                strategy_, ssd_.config(), group, p);
            const std::uint32_t chunk =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    bytes_left, ssd_.config().pageBytes));
            bool unreadable = false;
            sim::Tick page_done = ssd_.flash().readPage(
                ppa, issue_at, transfer_gate, chunk, &unreadable);
            if (unreadable) {
                group_unreadable = true;
                ++timing.uncorrectablePages;
                switch (config_.degradedPolicy) {
                case DegradedReadPolicy::FailBatch:
                    timing.failed = true;
                    break;
                case DegradedReadPolicy::ScreenerFallback:
                    // The rows packed in this page keep their INT4
                    // screener score; no extra device time.
                    group_lost = true;
                    break;
                case DegradedReadPolicy::HostRefetch:
                    // Pull the page from the host's DRAM copy of the
                    // weights over the host link.
                    page_done = ssd_.hostTransfer(chunk, page_done);
                    ++timing.hostRefetches;
                    break;
                }
            }
            done = std::max(done, page_done);
            group_done = std::max(group_done, page_done);
            bytes_left -= chunk;
            ++timing.fp32PagesRead;
            ++timing.channelPages[ppa.channel];
            group_pages.push_back(ppa);
        }
        if (group_lost)
            timing.degradedRows += rows_wanted;
        timing.fp32BytesRead += bytes_wanted;
        if (cache_) {
            timing.cacheMissRows += rows_wanted;
            timing.cacheMissTime += group_done - group_start;
            if (group_unreadable)
                cache_->markFlashLost(group);
            // Admit only groups whose row data actually arrived
            // intact: HostRefetch recovered the full-precision bytes,
            // while ScreenerFallback/FailBatch left the group
            // incomplete.  The admitted fill occupies the DRAM port
            // after the group's flash transfer lands; it is
            // off-critical-path (the consumer already has the data in
            // the staging buffer) but its port time is modeled.
            const bool data_intact = !group_unreadable
                || config_.degradedPolicy
                    == DegradedReadPolicy::HostRefetch;
            if (data_intact && !timing.failed
                && cache_->admit(group, group_pages))
                ssd_.dram().stream(bytes_wanted, group_done);
        }
    }
    return done;
}

sim::Tick
InferencePipeline::warmRows(std::span<const std::uint64_t> rows,
                            sim::Tick issue_at)
{
    if (!cache_ || rows.empty())
        return issue_at;

    // Same page-group walk as fetchFp32Rows: dedupe by group, fetch
    // misses from the layout's flash placement, admit intact groups.
    sim::Tick done = issue_at;
    std::size_t i = 0;
    while (i < rows.size()) {
        const std::uint64_t group = rows[i] / rowsPerPage_;
        std::uint32_t rows_wanted = 0;
        while (i < rows.size() && rows[i] / rowsPerPage_ == group) {
            ++rows_wanted;
            ++i;
        }
        if (cache_->lookup(group, rows_wanted))
            continue; // already warm
        const std::uint64_t bytes_wanted = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(rows_wanted)
                * weightRowBytes(),
            static_cast<std::uint64_t>(pagesPerRow_)
                * ssd_.config().pageBytes);

        sim::Tick group_done = issue_at;
        std::uint64_t bytes_left = bytes_wanted;
        bool group_unreadable = false;
        std::vector<ssdsim::PhysicalPage> group_pages;
        for (unsigned p = 0; p < pagesPerRow_; ++p) {
            const ssdsim::PhysicalPage ppa = layout::pageOfRow(
                strategy_, ssd_.config(), group, p);
            const std::uint32_t chunk =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    bytes_left, ssd_.config().pageBytes));
            bool unreadable = false;
            const sim::Tick page_done = ssd_.flash().readPage(
                ppa, issue_at, 0, chunk, &unreadable);
            if (unreadable)
                group_unreadable = true;
            group_done = std::max(group_done, page_done);
            bytes_left -= chunk;
            group_pages.push_back(ppa);
        }
        done = std::max(done, group_done);
        if (group_unreadable) {
            cache_->markFlashLost(group);
            continue;
        }
        if (cache_->admit(group, group_pages)) {
            cache_->noteWarmInsertion();
            done = std::max(
                done, ssd_.dram().stream(bytes_wanted, group_done));
        }
    }
    return done;
}

BatchTiming
InferencePipeline::runBatch(
    std::span<const std::uint64_t> candidates, sim::Tick issue_at)
{
    BatchTiming timing;
    timing.startedAt = issue_at;
    timing.channelPages.assign(ssd_.config().channels, 0);

    const double int4_gops = config_.int4Gops();
    const double fp32_gflops = config_.fp32Gflops();
    const std::uint64_t batch = spec_.batchSize;

    const sim::SpanId batch_span =
        spans_ ? spans_->begin("pipeline.batch", issue_at) : 0;

    // Host uploads: projected INT4 features plus pre-aligned CFP32
    // features for the whole batch.
    const std::uint64_t int4_feature_bytes =
        batch * spec_.shrunkDim() / 2;
    const std::uint64_t cfp32_feature_bytes =
        batch * (spec_.rowBytes() + 1);
    const sim::Tick inputs_ready = ssd_.hostTransfer(
        int4_feature_bytes + cfp32_feature_bytes, issue_at);
    if (spans_) {
        spans_->end(
            spans_->begin("pipeline.host_upload", issue_at),
            inputs_ready);
    }

    const std::uint64_t tiles = tileCount();
    sim::Tick int4_done_prev = inputs_ready; // INT4 stage cursor
    sim::Tick fp32_done_prev = inputs_ready; // FP32 stage cursor
    // Candidate pages stream through the shared 4 MB data buffer, so
    // the fetch of tile t may run ahead only while the buffer can
    // hold the pages of tiles [t-depth, t].  This bounds run-ahead,
    // which is what makes per-window channel/die imbalance show up
    // as idle bandwidth exactly as it does in the real device.
    const std::size_t depth = pipelineDepth();
    std::vector<sim::Tick> done_ring(depth, inputs_ready);
    // The scheduler dispatches one tile's candidate address list to
    // the flash controllers at a time (tile-synchronous transfers);
    // sensing for the next tile prefetches underneath.
    sim::Tick fetch_done_prev = inputs_ready;

    std::size_t cand_cursor = 0;
    for (std::uint64_t tile = 0; tile < tiles; ++tile) {
        const std::uint64_t first = tile * tileRows_;
        const std::uint64_t limit =
            std::min(first + tileRows_, spec_.categories);
        const std::uint64_t rows = limit - first;

        // Slice this tile's candidates out of the sorted batch set.
        const std::size_t cand_begin = cand_cursor;
        while (cand_cursor < candidates.size()
               && candidates[cand_cursor] < limit)
            ++cand_cursor;
        const std::span<const std::uint64_t> tile_candidates =
            candidates.subspan(cand_begin,
                               cand_cursor - cand_begin);

        const sim::Tick buffer_free =
            done_ring[tile % depth]; // fp32_done[t - depth]

        // ---- INT4 screening stage -----------------------------------
        sim::Tick int4_done;
        if (screening_) {
            const sim::Tick stage_start =
                std::max(int4_done_prev, buffer_free);
            const sim::SpanId int4_span = spans_
                ? spans_->begin("pipeline.int4", stage_start)
                : 0;
            const sim::Tick fetch_done =
                fetchInt4Tile(tile, stage_start, timing);
            const double ops = static_cast<double>(batch) * rows
                * spec_.shrunkDim() * 2.0;
            timing.int4Ops += static_cast<std::uint64_t>(ops);
            const sim::Tick compute = computeTicks(ops, int4_gops);
            // Ping-pong staging overlaps fetch with compute; the
            // threshold comparator consumes scores at the MAC output
            // rate, adding no serial time.
            int4_done =
                std::max(fetch_done, stage_start + compute);
            timing.int4StageTime += int4_done - stage_start;
            if (spans_)
                spans_->end(int4_span, int4_done);
        } else {
            int4_done = int4_done_prev;
        }

        // ---- FP32 candidate-only stage ------------------------------
        timing.candidateRows += tile_candidates.size();
        const double flops = static_cast<double>(batch)
            * static_cast<double>(tile_candidates.size())
            * spec_.hiddenDim * 2.0;
        timing.fp32Flops += static_cast<std::uint64_t>(flops);
        const sim::Tick compute = computeTicks(flops, fp32_gflops);

        sim::Tick fp32_done;
        if (config_.overlapStages) {
            // Candidate addresses exist as soon as this tile's
            // filter output does, so the dies begin sensing then;
            // the bus transfers additionally wait for a free slot in
            // the staging buffer.  Compute waits for the FP32 unit
            // to drain the previous tile.
            const sim::Tick transfer_gate =
                std::max(buffer_free, fetch_done_prev);
            const sim::Tick fetch_start =
                std::max(int4_done, transfer_gate);
            const sim::SpanId fp32_span = spans_
                ? spans_->begin("pipeline.fp32", fetch_start)
                : 0;
            const sim::Tick fetch_done = fetchFp32Rows(
                tile_candidates, int4_done, transfer_gate, timing);
            fetch_done_prev = fetch_done;
            const sim::Tick compute_done =
                std::max(fp32_done_prev, fetch_start) + compute;
            fp32_done = std::max(fetch_done, compute_done);
            timing.fp32FetchTime += fetch_done - fetch_start;
            timing.fp32ComputeTime += compute;
            int4_done_prev = int4_done; // next INT4 may proceed
            if (spans_)
                spans_->end(fp32_span, fp32_done);
        } else {
            // Strictly serial: the next tile's INT4 stage waits for
            // this tile's FP32 stage to finish entirely.
            const sim::Tick fetch_start =
                std::max(int4_done, fp32_done_prev);
            const sim::SpanId fp32_span = spans_
                ? spans_->begin("pipeline.fp32", fetch_start)
                : 0;
            const sim::Tick fetch_done = fetchFp32Rows(
                tile_candidates, fetch_start, 0, timing);
            fp32_done = fetch_done + compute;
            timing.fp32FetchTime += fetch_done - fetch_start;
            timing.fp32ComputeTime += compute;
            int4_done_prev = fp32_done;
            if (spans_)
                spans_->end(fp32_span, fp32_done);
        }
        done_ring[tile % depth] = fp32_done;
        fp32_done_prev = fp32_done;
    }

    // Results return to the host (top candidates' scores).
    const std::uint64_t result_bytes = batch * 128 * 8;
    timing.finishedAt =
        ssd_.hostTransfer(result_bytes, fp32_done_prev);
    if (spans_) {
        spans_->end(
            spans_->begin("pipeline.host_download", fp32_done_prev),
            timing.finishedAt);
        spans_->end(batch_span, timing.finishedAt);
    }
    if (metrics_)
        recordBatchMetrics(timing);
    ECSSD_TRACE_LOG(sim::TraceCategory::Pipeline, timing.finishedAt,
                    "batch done: candidates ", timing.candidateRows,
                    " fp32 pages ", timing.fp32PagesRead,
                    " latency ", sim::tickToMs(timing.latency()),
                    " ms");
    return timing;
}

void
InferencePipeline::recordBatchMetrics(const BatchTiming &timing)
{
    sim::MetricsRegistry &m = *metrics_;
    m.counterAdd("pipeline.batches", 1);
    m.counterAdd("pipeline.candidate_rows", timing.candidateRows);
    m.counterAdd("pipeline.fp32_pages_read", timing.fp32PagesRead);
    m.counterAdd("pipeline.fp32_bytes_read", timing.fp32BytesRead);
    m.counterAdd("pipeline.int4_pages_read", timing.int4PagesRead);
    m.counterAdd("pipeline.fp32_flops", timing.fp32Flops);
    m.counterAdd("pipeline.int4_ops", timing.int4Ops);
    m.counterAdd("pipeline.uncorrectable_pages",
                 timing.uncorrectablePages);
    m.counterAdd("pipeline.degraded_rows", timing.degradedRows);
    m.counterAdd("pipeline.host_refetches", timing.hostRefetches);
    if (timing.failed)
        m.counterAdd("pipeline.failed_batches", 1);
    if (cache_) {
        // Only cache-enabled runs emit cache.* keys: a disabled run's
        // metrics JSON stays byte-identical to a cache-less build.
        m.counterAdd("cache.hit", timing.cacheHitRows);
        m.counterAdd("cache.miss", timing.cacheMissRows);
        m.counterAdd("cache.hit_ps", timing.cacheHitTime);
        m.counterAdd("cache.miss_ps", timing.cacheMissTime);
    }
    // Per-phase time breakdown (Fig. 8's stage decomposition).
    m.counterAdd("pipeline.int4_stage_ps", timing.int4StageTime);
    m.counterAdd("pipeline.fp32_fetch_ps", timing.fp32FetchTime);
    m.counterAdd("pipeline.fp32_compute_ps",
                 timing.fp32ComputeTime);
    m.histogramSample("pipeline.batch_latency_ms", 0.0, 1000.0,
                      2000, sim::tickToMs(timing.latency()));
}

RunResult
InferencePipeline::run(CandidateSource &source, unsigned batches)
{
    ECSSD_ASSERT(source.rows() == spec_.categories,
                 "candidate source row-count mismatch");
    RunResult result;
    sim::Tick cursor = 0;
    const sim::Tick started = cursor;
    std::uint64_t flops = 0;
    std::uint64_t fp32_bytes = 0;
    for (unsigned b = 0; b < batches; ++b) {
        const std::vector<std::uint64_t> candidates =
            source.nextBatch();
        BatchTiming timing = runBatch(candidates, cursor);
        cursor = timing.finishedAt;
        flops += timing.fp32Flops;
        fp32_bytes += timing.fp32BytesRead;
        result.uncorrectablePages += timing.uncorrectablePages;
        result.degradedRows += timing.degradedRows;
        result.hostRefetches += timing.hostRefetches;
        result.cacheHitRows += timing.cacheHitRows;
        result.cacheMissRows += timing.cacheMissRows;
        if (timing.failed)
            ++result.failedBatches;
        result.batches.push_back(std::move(timing));
    }
    result.totalTime = cursor - started;

    const double seconds = sim::tickToSeconds(result.totalTime);
    if (seconds > 0.0) {
        result.effectiveGflops =
            static_cast<double>(flops) / seconds / 1e9;
        // Channel-level bandwidth utilization for FP32 weight
        // transfer: bytes moved vs what the 8 buses could move.
        const double capacity =
            ssd_.config().internalBandwidthGbps() * 1e9 * seconds;
        result.channelUtilization =
            static_cast<double>(fp32_bytes) / capacity;
    }
    return result;
}

} // namespace accel
} // namespace ecssd
