/**
 * @file
 * The in-SSD inference pipeline (Section 4.5's workflow).
 *
 * Inference proceeds tile-by-tile over the L categories.  For each
 * tile the INT4 stage fetches the screener sub-matrix (from DRAM in
 * the heterogeneous layout, from flash in the homogeneous baseline),
 * scores it, and filters candidates; the FP32 stage then fetches the
 * candidate weight rows from the flash channels the layout strategy
 * placed them on and runs candidate-only classification.  With
 * overlap enabled the INT4 stage of tile t+1 runs while the FP32
 * stage of tile t is in flight, and ping-pong buffering overlaps
 * fetch with compute inside each stage.
 */

#ifndef ECSSD_ACCEL_PIPELINE_HH
#define ECSSD_ACCEL_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/accel_config.hh"
#include "accel/candidate_source.hh"
#include "accel/row_cache.hh"
#include "layout/strategy.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "ssdsim/ssd.hh"
#include "xclass/workload.hh"

namespace ecssd
{
namespace accel
{

/** Where the INT4 screener weights live (Section 4.3). */
enum class Int4Placement
{
    /** Heterogeneous: INT4 in DRAM, FP32 in flash (ECSSD). */
    Dram,
    /** Homogeneous: both INT4 and FP32 in flash (baseline). */
    Flash,
};

/** Timing outcome of one inference batch. */
struct BatchTiming
{
    sim::Tick startedAt = 0;
    sim::Tick finishedAt = 0;
    /** Candidate rows fetched for FP32 classification. */
    std::uint64_t candidateRows = 0;
    /** Flash pages read for FP32 weights. */
    std::uint64_t fp32PagesRead = 0;
    /** Bytes streamed over the channel buses for weight rows. */
    std::uint64_t fp32BytesRead = 0;
    /** Flash pages read for INT4 weights (homogeneous only). */
    std::uint64_t int4PagesRead = 0;
    /** FP32 floating-point operations executed. */
    std::uint64_t fp32Flops = 0;
    /** INT4 integer MAC operations executed. */
    std::uint64_t int4Ops = 0;
    /** Sum over tiles of the FP32 fetch critical path. */
    sim::Tick fp32FetchTime = 0;
    /** Sum over tiles of the FP32 compute demand. */
    sim::Tick fp32ComputeTime = 0;
    /** Sum over tiles of the INT4 stage time. */
    sim::Tick int4StageTime = 0;
    /** Per-channel pages read during this batch (FP32 weights). */
    std::vector<std::uint64_t> channelPages;
    /** FP32 candidate pages lost to uncorrectable ECC errors. */
    std::uint64_t uncorrectablePages = 0;
    /** Candidate rows served with the INT4 screener score because
     *  their FP32 page was lost (ScreenerFallback policy). */
    std::uint64_t degradedRows = 0;
    /** Lost pages re-fetched from host DRAM (HostRefetch policy). */
    std::uint64_t hostRefetches = 0;
    /** Candidate rows served from the DRAM hot-row cache. */
    std::uint64_t cacheHitRows = 0;
    /** Candidate rows that missed the cache (or ran cache-less). */
    std::uint64_t cacheMissRows = 0;
    /** Sum of per-group DRAM service time for cache hits. */
    sim::Tick cacheHitTime = 0;
    /** Sum of per-group flash service time for cache misses. */
    sim::Tick cacheMissTime = 0;
    /** True when an uncorrectable read aborted the batch (FailBatch
     *  policy); timing still covers the work done up to the abort
     *  decision, but the batch produced no usable result. */
    bool failed = false;

    sim::Tick
    latency() const
    {
        return finishedAt - startedAt;
    }
};

/** Aggregated run outcome. */
struct RunResult
{
    std::vector<BatchTiming> batches;
    sim::Tick totalTime = 0;
    /** Channel-bus utilization over the whole run. */
    double channelUtilization = 0.0;
    /** Average effective FP32 GFLOPS across the run. */
    double effectiveGflops = 0.0;
    /** Sum of per-batch uncorrectable FP32 page losses. */
    std::uint64_t uncorrectablePages = 0;
    /** Sum of per-batch screener-degraded rows. */
    std::uint64_t degradedRows = 0;
    /** Sum of per-batch host-DRAM page refetches. */
    std::uint64_t hostRefetches = 0;
    /** Batches aborted under the FailBatch policy. */
    unsigned failedBatches = 0;
    /** Sum of per-batch cache-hit candidate rows. */
    std::uint64_t cacheHitRows = 0;
    /** Sum of per-batch cache-miss candidate rows. */
    std::uint64_t cacheMissRows = 0;

    /** Row-level hit rate of the DRAM hot-row cache (0 when the
     *  cache is disabled or no candidates were fetched). */
    double
    cacheHitRate() const
    {
        const std::uint64_t total = cacheHitRows + cacheMissRows;
        return total == 0 ? 0.0
                          : static_cast<double>(cacheHitRows)
                / static_cast<double>(total);
    }

    /** Mean batch latency in milliseconds. */
    double
    meanBatchMs() const
    {
        if (batches.empty())
            return 0.0;
        double sum = 0.0;
        for (const BatchTiming &batch : batches)
            sum += sim::tickToMs(batch.latency());
        return sum / static_cast<double>(batches.size());
    }
};

/** The tile-by-tile dual-precision inference pipeline. */
class InferencePipeline
{
  public:
    /**
     * @param spec Workload shape.
     * @param config Accelerator parameters.
     * @param ssd The SSD whose flash/DRAM/host-link timelines the
     *        pipeline drives (must outlive the pipeline).
     * @param strategy FP32 row placement (must outlive the pipeline).
     * @param int4_placement Heterogeneous (DRAM) or homogeneous
     *        (flash) INT4 storage.
     */
    InferencePipeline(const xclass::BenchmarkSpec &spec,
                      const AccelConfig &config,
                      ssdsim::SsdDevice &ssd,
                      const layout::LayoutStrategy &strategy,
                      Int4Placement int4_placement);

    /** Rows per tile, sized to the INT4 weight staging buffer. */
    std::uint64_t tileRows() const { return tileRows_; }

    /**
     * Fetch run-ahead depth in tiles: how many tiles of candidate
     * pages the 4 MB data buffer can hold ahead of the FP32 consumer
     * (minimum 2, the ping-pong floor).
     */
    std::size_t pipelineDepth() const;

    /** Stored bytes of one weight row at the configured precision. */
    std::uint64_t weightRowBytes() const;

    /** Number of flash page groups holding the weight rows. */
    std::uint64_t pageGroupCount() const;

    /** Flash pages read per page group (>= 1): what a re-layout
     *  migration of one group must move. */
    unsigned pagesPerGroup() const { return pagesPerRow_; }

    /** Number of tiles per batch sweep. */
    std::uint64_t tileCount() const;

    /**
     * Run one inference batch whose candidates are @p candidates.
     *
     * @param candidates Sorted candidate rows over all L categories.
     * @param issue_at Batch start tick.
     */
    BatchTiming runBatch(std::span<const std::uint64_t> candidates,
                         sim::Tick issue_at);

    /**
     * Run @p batches batches from @p source back-to-back and
     * aggregate.
     */
    RunResult run(CandidateSource &source, unsigned batches);

    /** True when the FP32 stage (not screening) is in use at all. */
    bool
    screeningEnabled() const
    {
        return screening_;
    }

    /** Disable the INT4 screening stage (the -N architectures). */
    void setScreeningEnabled(bool enabled) { screening_ = enabled; }

    /** Reaction to uncorrectable candidate-row reads. */
    DegradedReadPolicy
    degradedPolicy() const
    {
        return config_.degradedPolicy;
    }

    /** Switch the degraded-read policy (e.g. the server's last-resort
     *  fallback after FailBatch retries are exhausted). */
    void
    setDegradedPolicy(DegradedReadPolicy policy)
    {
        config_.degradedPolicy = policy;
    }

    /** The DRAM hot-row cache, or nullptr when disabled. */
    RowCache *rowCache() { return cache_.get(); }
    const RowCache *rowCache() const { return cache_.get(); }

    /**
     * Warm the DRAM hot-row cache with @p rows (sorted candidate
     * rows, e.g. what the staged screener selected for a recorded
     * query during an online redeploy).  Misses are fetched from
     * flash and admitted exactly like demand fills — same layout
     * addressing, same admission policy, same DRAM fill transfer —
     * but counted as RowCacheStats::warmInsertions.  A group whose
     * flash read comes back uncorrectable is marked lost and not
     * admitted.  No-op without a cache.
     *
     * @return Completion tick of the last warm fill.
     */
    sim::Tick warmRows(std::span<const std::uint64_t> rows,
                       sim::Tick issue_at);

    /**
     * Attach (or detach, with nullptr) observability sinks.  When a
     * tracer is attached every batch emits the phase spans
     * pipeline.batch > {pipeline.host_upload, pipeline.int4,
     * pipeline.fp32, pipeline.host_download}; when a registry is
     * attached every batch records the "pipeline.*" counters and the
     * pipeline.batch_latency_ms histogram.  Recording is read-only
     * with respect to the timing model: an instrumented run returns
     * bit-identical BatchTiming to a bare one.
     */
    void
    attachObservability(sim::MetricsRegistry *metrics,
                        sim::SpanTracer *spans)
    {
        metrics_ = metrics;
        spans_ = spans;
    }

  private:
    /** Fetch one tile's INT4 weights; returns the completion tick. */
    sim::Tick fetchInt4Tile(std::uint64_t tile, sim::Tick issue_at,
                            BatchTiming &timing);

    /**
     * Fetch a tile's candidate FP32 rows.
     *
     * @param rows Sorted candidate rows of this tile.
     * @param issue_at When the addresses reach the flash controllers
     *        (dies begin sensing).
     * @param transfer_gate Earliest tick the bus transfers may start
     *        (staging-buffer availability); 0 for no gate.
     * @return Completion tick of the last transfer.
     */
    sim::Tick fetchFp32Rows(
        std::span<const std::uint64_t> rows, sim::Tick issue_at,
        sim::Tick transfer_gate, BatchTiming &timing);

    /** Record one finished batch into the attached registry. */
    void recordBatchMetrics(const BatchTiming &timing);

    xclass::BenchmarkSpec spec_;
    AccelConfig config_;
    ssdsim::SsdDevice &ssd_;
    const layout::LayoutStrategy &strategy_;
    Int4Placement int4Placement_;
    bool screening_ = true;
    std::uint64_t tileRows_;
    unsigned pagesPerRow_;
    /** Weight rows sharing one flash page (>= 1). */
    std::uint64_t rowsPerPage_ = 1;
    /** DRAM hot-row candidate cache (null when capacityBytes = 0,
     *  which keeps the fetch path bit-identical to a cache-less
     *  build). */
    std::unique_ptr<RowCache> cache_;
    /** Optional observability sinks (null = uninstrumented). */
    sim::MetricsRegistry *metrics_ = nullptr;
    sim::SpanTracer *spans_ = nullptr;
};

} // namespace accel
} // namespace ecssd

#endif // ECSSD_ACCEL_PIPELINE_HH
